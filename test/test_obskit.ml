(* Telemetry layer: sinks, events, the metrics registry, the recorder,
   the exporters — and the invariant that makes all of it safe to ship:
   tracing never changes what a run computes. *)

module E = Obskit.Event
module Sink = Obskit.Sink
module Metrics = Simkit.Metrics
module Stats = Simkit.Stats

let sample_event payload = { E.ts_us = 12.5; domain = 3; payload }

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* --- sinks ------------------------------------------------------- *)

let test_null_sink_disabled () =
  Alcotest.(check bool) "null disabled" false (Sink.enabled Sink.null);
  (* The payload thunk must not run on the null sink. *)
  let called = ref false in
  Sink.record Sink.null (fun () ->
      called := true;
      E.Phi_sample { round = 0; phi = 0.0 });
  Alcotest.(check bool) "thunk not called" false !called

let test_stream_sink_delivers () =
  let seen = ref [] in
  let sink = Sink.stream (fun ev -> seen := ev :: !seen) in
  Alcotest.(check bool) "stream enabled" true (Sink.enabled sink);
  Sink.record sink (fun () -> E.Phi_sample { round = 7; phi = 3.5 });
  Sink.record sink (fun () -> E.Round_begin { round = 8; active = 2; live_data = 1 });
  match !seen with
  | [ b; a ] ->
      (match a.E.payload with
      | E.Phi_sample { round; phi } ->
          Alcotest.(check int) "round" 7 round;
          Alcotest.(check (float 0.0)) "phi" 3.5 phi
      | _ -> Alcotest.fail "wrong first payload");
      (match b.E.payload with
      | E.Round_begin { active; _ } -> Alcotest.(check int) "active" 2 active
      | _ -> Alcotest.fail "wrong second payload");
      Alcotest.(check bool) "timestamps non-decreasing" true
        (b.E.ts_us >= a.E.ts_us)
  | l -> Alcotest.failf "expected 2 events, got %d" (List.length l)

let test_ring_capacity_and_dropped () =
  let ring = Sink.Ring.create ~capacity:4 in
  let sink = Sink.Ring.sink ring in
  for i = 1 to 10 do
    Sink.emit sink (sample_event (E.Phi_sample { round = i; phi = float_of_int i }))
  done;
  Alcotest.(check int) "length capped" 4 (Sink.Ring.length ring);
  Alcotest.(check int) "dropped counted" 6 (Sink.Ring.dropped ring);
  let rounds =
    List.map
      (fun ev ->
        match ev.E.payload with E.Phi_sample { round; _ } -> round | _ -> -1)
      (Sink.Ring.contents ring)
  in
  (* Newest [capacity] events survive, oldest first. *)
  Alcotest.(check (list int)) "newest retained in order" [ 7; 8; 9; 10 ] rounds

let test_ring_rejects_bad_capacity () =
  Alcotest.check_raises "capacity 0" (Invalid_argument "Sink.Ring.create: capacity must be >= 1")
    (fun () -> ignore (Sink.Ring.create ~capacity:0))

let test_tee_fans_out_and_collapses () =
  Alcotest.(check bool) "tee [] is null" false (Sink.enabled (Sink.tee []));
  Alcotest.(check bool) "tee of nulls is null" false
    (Sink.enabled (Sink.tee [ Sink.null; Sink.null ]));
  let a = ref 0 and b = ref 0 in
  let sink =
    Sink.tee
      [
        Sink.stream (fun _ -> incr a); Sink.null; Sink.stream (fun _ -> incr b);
      ]
  in
  Sink.emit sink (sample_event (E.Span { name = "x"; phase = E.Begin }));
  Sink.emit sink (sample_event (E.Span { name = "x"; phase = E.End }));
  Alcotest.(check int) "first sink saw both" 2 !a;
  Alcotest.(check int) "second sink saw both" 2 !b

let test_span_emits_pair_even_on_exception () =
  let seen = ref [] in
  let sink = Sink.stream (fun ev -> seen := ev.E.payload :: !seen) in
  let r = Sink.span sink "outer" (fun () -> Sink.span sink "inner" (fun () -> 41) + 1) in
  Alcotest.(check int) "result passed through" 42 r;
  (try Sink.span sink "boom" (fun () -> failwith "boom") with Failure _ -> ());
  let names =
    List.rev_map
      (function
        | E.Span { name; phase } ->
            name ^ (match phase with E.Begin -> "+" | E.End -> "-")
        | _ -> "?")
      !seen
  in
  Alcotest.(check (list string)) "properly nested, closed on raise"
    [ "outer+"; "inner+"; "inner-"; "outer-"; "boom+"; "boom-" ]
    names

let test_event_json_shape () =
  let json =
    E.to_json
      (sample_event
         (E.Step_planned
            { round = 2; msg = 9; kind = "zig-zag"; rotate = true; delta_phi = -1.25 }))
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "json contains %s" needle)
        true (contains json needle))
    [ "\"type\":\"step_planned\""; "\"round\":2"; "\"rotate\":true"; "\"domain\":3" ]

(* --- JSON string escaping ---------------------------------------- *)

(* Decode every string value of [field] back out of flat JSON text,
   undoing the escaping the exporters promise (backslash-escaped
   quote/backslash/n/r/t and backslash-u hex for other control
   bytes) — a genuine round trip, not a substring check. *)
let extract_string_fields json field =
  let marker = Printf.sprintf "\"%s\":" field in
  let m = String.length marker and j = String.length json in
  let decode_from i =
    let b = Buffer.create 16 in
    let rec go i =
      match json.[i] with
      | '"' -> Buffer.contents b
      | '\\' -> (
          match json.[i + 1] with
          | 'n' ->
              Buffer.add_char b '\n';
              go (i + 2)
          | 'r' ->
              Buffer.add_char b '\r';
              go (i + 2)
          | 't' ->
              Buffer.add_char b '\t';
              go (i + 2)
          | 'b' ->
              Buffer.add_char b '\b';
              go (i + 2)
          | 'u' ->
              Buffer.add_char b
                (Char.chr (int_of_string ("0x" ^ String.sub json (i + 2) 4)));
              go (i + 6)
          | c ->
              Buffer.add_char b c;
              go (i + 2))
      | c ->
          Buffer.add_char b c;
          go (i + 1)
    in
    go i
  in
  let rec scan i acc =
    if i + m > j then List.rev acc
    else if String.sub json i m = marker then begin
      (* Skip optional whitespace between ':' and the opening quote. *)
      let v = ref (i + m) in
      while json.[!v] = ' ' do
        incr v
      done;
      if json.[!v] = '"' then scan (!v + 1) (decode_from (!v + 1) :: acc)
      else scan (i + 1) acc
    end
    else scan (i + 1) acc
  in
  scan 0 []

let no_raw_control s =
  String.for_all (fun c -> Char.code c >= 0x20 || c = '\n') s

let hostile = "he said \"hi\" c:\\tmp\nline2\ttab\rcr \x01\x1f end"

let test_event_json_escaping_roundtrip () =
  let json = E.to_json (sample_event (E.Span { name = hostile; phase = E.Begin })) in
  Alcotest.(check bool) "no raw control bytes in JSON" true
    (no_raw_control json);
  Alcotest.(check (list string)) "span name survives the round trip"
    [ hostile ]
    (extract_string_fields json "name");
  let json =
    E.to_json
      (sample_event
         (E.Step_planned
            { round = 1; msg = 2; kind = hostile; rotate = false; delta_phi = 0.0 }))
  in
  Alcotest.(check (list string)) "step kind survives the round trip"
    [ hostile ]
    (extract_string_fields json "kind")

(* --- metrics registry -------------------------------------------- *)

let test_metrics_counter_roundtrip () =
  let m = Metrics.create () in
  Alcotest.(check int) "absent counter reads 0" 0 (Metrics.counter m "x");
  Metrics.incr m "x";
  Metrics.incr m "x";
  Metrics.add m "x" 40;
  Alcotest.(check int) "counter accumulates" 42 (Metrics.counter m "x")

let test_metrics_stream_roundtrip () =
  let m = Metrics.create () in
  Alcotest.(check bool) "absent stream is None" true (Metrics.stream m "s" = None);
  List.iter (Metrics.observe m "s") [ 1.0; 2.0; 3.0; 4.0 ];
  (match Metrics.stream m "s" with
  | None -> Alcotest.fail "stream missing"
  | Some s ->
      Alcotest.(check int) "n" 4 s.Stats.n;
      Alcotest.(check (float 1e-9)) "mean" 2.5 s.Stats.mean;
      Alcotest.(check (float 1e-9)) "total" 10.0 s.Stats.total;
      (* Percentiles are histogram-reconstructed: within the bucket
         relative-error bound, not exact. *)
      Alcotest.(check (float 0.05)) "p50 within bucket error" 2.0 s.Stats.p50;
      Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
      Alcotest.(check (float 1e-9)) "max" 4.0 s.Stats.max);
  (match Metrics.histogram m "s" with
  | None -> Alcotest.fail "histogram missing"
  | Some h -> Alcotest.(check int) "histogram count" 4 (Profkit.Histogram.count h));
  Alcotest.(check bool) "absent histogram is None" true
    (Metrics.histogram m "nope" = None)

let test_metrics_merge_and_reset () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.add a "c" 5;
  Metrics.observe a "s" 1.0;
  Metrics.add b "c" 7;
  Metrics.add b "only_b" 1;
  Metrics.observe b "s" 3.0;
  Metrics.merge_into ~dst:a b;
  Alcotest.(check int) "counters summed" 12 (Metrics.counter a "c");
  Alcotest.(check int) "new counter copied" 1 (Metrics.counter a "only_b");
  (match Metrics.stream a "s" with
  | Some s ->
      Alcotest.(check int) "observations appended" 2 s.Stats.n;
      Alcotest.(check (float 1e-9)) "merged total" 4.0 s.Stats.total
  | None -> Alcotest.fail "merged stream missing");
  Metrics.reset a;
  Alcotest.(check int) "reset clears counters" 0 (Metrics.counter a "c");
  Alcotest.(check bool) "reset clears streams" true (Metrics.stream a "s" = None)

let test_stats_percentiles () =
  let t = Stats.of_list (List.init 100 (fun i -> float_of_int (i + 1))) in
  let s = Stats.summary t in
  Alcotest.(check (float 1e-9)) "p50 of 1..100" 50.5 s.Stats.p50;
  Alcotest.(check (float 1e-9)) "p95 of 1..100" 95.05 s.Stats.p95;
  Alcotest.(check (float 1e-9)) "p99 of 1..100" 99.01 s.Stats.p99;
  let one = Stats.summary (Stats.of_list [ 7.0 ]) in
  Alcotest.(check (float 1e-9)) "single-sample percentiles" 7.0 one.Stats.p50;
  let empty = Stats.summary (Stats.create ()) in
  Alcotest.(check (float 1e-9)) "empty percentiles are 0" 0.0 empty.Stats.p99

(* --- instrumented runs ------------------------------------------- *)

let hot_trace m =
  (* A hot pair plus background noise: guarantees rotations happen. *)
  let rng = Simkit.Rng.create 5 in
  Array.init m (fun i ->
      if i mod 4 < 3 then (i / 4, 3, 60)
      else (i / 4, Simkit.Rng.int rng 63, Simkit.Rng.int rng 63))

let count_events events pred = List.length (List.filter pred events)

let test_traced_concurrent_run_bit_identical_and_complete () =
  let trace = hot_trace 400 in
  let untraced = Cbnet.Concurrent.run (Bstnet.Build.balanced 63) trace in
  let ring = Sink.Ring.create ~capacity:2_000_000 in
  let traced =
    Cbnet.Concurrent.run ~sink:(Sink.Ring.sink ring) (Bstnet.Build.balanced 63)
      trace
  in
  (* The whole point of the telemetry layer: observation changes
     nothing.  Structural equality on Run_stats.t covers every field,
     floats included, so this is a bit-for-bit check. *)
  Alcotest.(check bool) "run stats bit-identical" true (untraced = traced);
  let events = Sink.Ring.contents ring in
  Alcotest.(check int) "dropped nothing" 0 (Sink.Ring.dropped ring);
  let n kind = count_events events (fun ev -> E.name ev.E.payload = kind) in
  Alcotest.(check int) "one Round_begin per round"
    traced.Cbnet.Run_stats.rounds (n "round_begin");
  Alcotest.(check int) "one Phi_sample per round" traced.Cbnet.Run_stats.rounds
    (n "phi_sample");
  Alcotest.(check int) "deliveries = data + updates"
    (traced.Cbnet.Run_stats.messages + traced.Cbnet.Run_stats.update_messages)
    (n "msg_delivered");
  Alcotest.(check bool) "rotations observed" true (n "rotation" > 0);
  Alcotest.(check bool) "conflicts observed" true (n "conflict" > 0);
  let rot_total =
    List.fold_left
      (fun acc ev ->
        match ev.E.payload with E.Rotation { count; _ } -> acc + count | _ -> acc)
      0 events
  in
  Alcotest.(check int) "rotation counts sum to Run_stats"
    traced.Cbnet.Run_stats.rotations rot_total

let test_traced_sequential_run_bit_identical () =
  let trace = hot_trace 300 in
  let untraced = Cbnet.Sequential.run (Bstnet.Build.balanced 63) trace in
  let ring = Sink.Ring.create ~capacity:2_000_000 in
  let traced =
    Cbnet.Sequential.run ~sink:(Sink.Ring.sink ring) (Bstnet.Build.balanced 63)
      trace
  in
  Alcotest.(check bool) "run stats bit-identical" true (untraced = traced);
  let events = Sink.Ring.contents ring in
  let n kind = count_events events (fun ev -> E.name ev.E.payload = kind) in
  Alcotest.(check bool) "steps observed" true (n "step_planned" > 0);
  Alcotest.(check int) "deliveries = data + updates"
    (traced.Cbnet.Run_stats.messages + traced.Cbnet.Run_stats.update_messages)
    (n "msg_delivered")

let test_sequential_pp_prints_zero_conflict_fields () =
  (* Sequential runs must print the concurrent-only columns as zeros so
     logs line up across algorithms. *)
  let stats = Cbnet.Sequential.run (Bstnet.Build.balanced 15) [| (0, 0, 14) |] in
  let line = Format.asprintf "%a" Cbnet.Run_stats.pp stats in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "pp contains %s" needle)
        true (contains line needle))
    [ "pauses=0"; "bypasses=0"; "rounds=" ]

let test_pool_task_lifecycle_events () =
  let check_with num_domains =
    let ring = Sink.Ring.create ~capacity:10_000 in
    let results =
      Simkit.Pool.with_pool ~num_domains ~sink:(Sink.Ring.sink ring) (fun p ->
          Simkit.Pool.map p 8 (fun i -> i * i))
    in
    Alcotest.(check (array int)) "results in slot order"
      (Array.init 8 (fun i -> i * i))
      results;
    let events = Sink.Ring.contents ring in
    let phase ph =
      count_events events (fun ev ->
          match ev.E.payload with
          | E.Pool_task { phase; _ } -> phase = ph
          | _ -> false)
    in
    Alcotest.(check int) "8 enqueues" 8 (phase E.Enqueue);
    Alcotest.(check int) "8 starts" 8 (phase E.Start);
    Alcotest.(check int) "8 dones" 8 (phase E.Done);
    List.iter
      (fun ev ->
        match ev.E.payload with
        | E.Pool_task { phase = E.Done; elapsed_us; _ } ->
            Alcotest.(check bool) "elapsed non-negative" true (elapsed_us >= 0.0)
        | _ -> ())
      events
  in
  check_with 1;
  (* in-caller pool *)
  check_with 3 (* worker domains *)

(* --- recorder and exporters -------------------------------------- *)

let test_telemetry_recorder_feeds_registry () =
  let reg = Metrics.create () in
  let sink = Runtime.Telemetry.metrics_sink reg in
  Sink.emit sink (sample_event (E.Round_begin { round = 0; active = 3; live_data = 2 }));
  Sink.emit sink (sample_event (E.Conflict { round = 0; msg = 1; kind = E.Pause }));
  Sink.emit sink (sample_event (E.Conflict { round = 0; msg = 2; kind = E.Bypass }));
  Sink.emit sink (sample_event (E.Conflict { round = 1; msg = 1; kind = E.Pause }));
  Sink.emit sink
    (sample_event (E.Rotation { round = 1; msg = 1; node = 4; count = 2; delta_phi = -0.5 }));
  Sink.emit sink
    (sample_event
       (E.Msg_delivered
          { round = 9; msg = 1; data = true; birth = 4; hops = 3; rotations = 2 }));
  Alcotest.(check int) "rounds" 1 (Metrics.counter reg "cbnet_rounds_total");
  Alcotest.(check int) "pauses" 2
    (Metrics.counter reg "cbnet_conflicts_total{kind=\"pause\"}");
  Alcotest.(check int) "bypasses" 1
    (Metrics.counter reg "cbnet_conflicts_total{kind=\"bypass\"}");
  Alcotest.(check int) "rotations use count" 2
    (Metrics.counter reg "cbnet_rotations_total");
  (match Metrics.stream reg "cbnet_delivery_latency_rounds" with
  | None -> Alcotest.fail "latency stream missing"
  | Some s ->
      Alcotest.(check int) "latency stream n" 1 s.Stats.n;
      Alcotest.(check (float 1e-9)) "latency stream total" 5.0 s.Stats.total)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_chrome_trace_export () =
  let trace = hot_trace 200 in
  let ring = Sink.Ring.create ~capacity:1_000_000 in
  ignore
    (Simkit.Pool.with_pool ~num_domains:1 ~sink:(Sink.Ring.sink ring) (fun p ->
         Simkit.Pool.map p 2 (fun _ ->
             Cbnet.Concurrent.run ~sink:(Sink.Ring.sink ring)
               (Bstnet.Build.balanced 63) trace)));
  let path = Filename.temp_file "obskit_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Runtime.Export.chrome_trace (Sink.Ring.contents ring) path;
      let body = read_file path in
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "trace contains %s" needle)
            true (contains body needle))
        [
          "\"traceEvents\"";
          "\"process_name\"";
          "\"name\":\"round_begin\"";
          "\"name\":\"msg_delivered\"";
          "\"ph\":\"X\"";
          "\"name\":\"phi\"";
        ];
      (* Structural sanity without a JSON parser: brackets balance and
         no NaN/infinity literals leak in. *)
      let count c = String.fold_left (fun k ch -> if ch = c then k + 1 else k) 0 body in
      Alcotest.(check int) "braces balance" (count '{') (count '}');
      Alcotest.(check int) "brackets balance" (count '[') (count ']');
      Alcotest.(check bool) "no nan" false (contains body "nan"))

let test_chrome_trace_escaping_and_dropped () =
  (* A hostile span name must survive the exporter, and a clipped ring
     must leave the trailing events_dropped instant. *)
  let ring = Sink.Ring.create ~capacity:100 in
  let sink = Sink.Ring.sink ring in
  Sink.emit sink (sample_event (E.Span { name = hostile; phase = E.Begin }));
  Sink.emit sink (sample_event (E.Span { name = hostile; phase = E.End }));
  Sink.emit sink (sample_event (E.Phi_sample { round = 0; phi = 1.5 }));
  let path = Filename.temp_file "obskit_hostile" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Runtime.Export.chrome_trace ~dropped:3 (Sink.Ring.contents ring) path;
      let body = read_file path in
      let count c =
        String.fold_left (fun k ch -> if ch = c then k + 1 else k) 0 body
      in
      Alcotest.(check int) "braces balance" (count '{') (count '}');
      Alcotest.(check bool) "no raw control bytes" true (no_raw_control body);
      Alcotest.(check bool) "hostile span name round-trips" true
        (List.mem hostile (extract_string_fields body "name"));
      Alcotest.(check bool) "dropped trailer present" true
        (contains body "\"events_dropped\"");
      Alcotest.(check bool) "dropped count recorded" true
        (contains body "\"dropped\":3"))

let test_profile_json_export () =
  let module P = Profkit.Profile in
  let p = P.create () in
  P.round_begin p;
  P.enter p P.Commit;
  P.round_close p;
  P.round_commit p;
  P.stamp_hit p;
  P.stamp_miss p;
  P.conflict p;
  P.wave p ~members:2 ~busiest:3 ~slots:4;
  let path = Filename.temp_file "obskit_profile" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Runtime.Export.profile_json ~commit:"abc" ~timestamp:"now"
        ~workload:hostile ~domains:2 p path;
      let body = read_file path in
      let count c =
        String.fold_left (fun k ch -> if ch = c then k + 1 else k) 0 body
      in
      Alcotest.(check int) "braces balance" (count '{') (count '}');
      Alcotest.(check bool) "no raw control bytes" true (no_raw_control body);
      Alcotest.(check (list string)) "hostile workload round-trips"
        [ hostile ]
        (extract_string_fields body "workload");
      (* One phase entry per profile phase, and the counter/speculation
         blocks carry the driven values. *)
      Alcotest.(check int) "one entry per phase"
        (List.length P.phases)
        (List.length (extract_string_fields body "phase"));
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "profile json contains %s" needle)
            true (contains body needle))
        [
          "\"rounds\": 1";
          "\"domains\": 2";
          "\"stamp_hits\": 1";
          "\"claim_conflicts\": 1";
          "\"stamp_hit_rate\": 0.5";
          "\"avg_wave_imbalance\": 1.5";
          "\"round_us\":";
        ])

let test_prometheus_export () =
  let reg = Metrics.create () in
  let sink = Sink.tee [ Runtime.Telemetry.metrics_sink reg ] in
  let stats =
    Cbnet.Concurrent.run ~sink (Bstnet.Build.balanced 63) (hot_trace 200)
  in
  let path = Filename.temp_file "obskit_metrics" ".prom" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Runtime.Export.prometheus reg path;
      let body = read_file path in
      Alcotest.(check bool) "TYPE line for rounds" true
        (contains body "# TYPE cbnet_rounds_total counter");
      Alcotest.(check bool) "TYPE line for phi histogram" true
        (contains body "# TYPE cbnet_phi histogram");
      Alcotest.(check bool) "+Inf bucket present" true
        (contains body "cbnet_phi_bucket{le=\"+Inf\"}");
      Alcotest.(check bool) "finite bucket series present" true
        (contains body "cbnet_phi_bucket{le=\"");
      Alcotest.(check bool) "dropped counter present" true
        (contains body "cbnet_events_dropped_total 0");
      Alcotest.(check bool) "rounds counter nonzero" true
        (contains body
           (Printf.sprintf "cbnet_rounds_total %d" stats.Cbnet.Run_stats.rounds));
      Alcotest.(check bool) "count matches rounds" true
        (contains body
           (Printf.sprintf "cbnet_phi_count %d" stats.Cbnet.Run_stats.rounds)))

let () =
  Alcotest.run "obskit"
    [
      ( "sinks",
        [
          Alcotest.test_case "null disabled" `Quick test_null_sink_disabled;
          Alcotest.test_case "stream delivers" `Quick test_stream_sink_delivers;
          Alcotest.test_case "ring capacity" `Quick test_ring_capacity_and_dropped;
          Alcotest.test_case "ring bad capacity" `Quick test_ring_rejects_bad_capacity;
          Alcotest.test_case "tee" `Quick test_tee_fans_out_and_collapses;
          Alcotest.test_case "span nesting" `Quick test_span_emits_pair_even_on_exception;
          Alcotest.test_case "event json" `Quick test_event_json_shape;
          Alcotest.test_case "event json escaping" `Quick
            test_event_json_escaping_roundtrip;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter roundtrip" `Quick test_metrics_counter_roundtrip;
          Alcotest.test_case "stream roundtrip" `Quick test_metrics_stream_roundtrip;
          Alcotest.test_case "merge and reset" `Quick test_metrics_merge_and_reset;
          Alcotest.test_case "percentiles" `Quick test_stats_percentiles;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "concurrent traced = untraced" `Quick
            test_traced_concurrent_run_bit_identical_and_complete;
          Alcotest.test_case "sequential traced = untraced" `Quick
            test_traced_sequential_run_bit_identical;
          Alcotest.test_case "pp zero conflict fields" `Quick
            test_sequential_pp_prints_zero_conflict_fields;
          Alcotest.test_case "pool lifecycle" `Quick test_pool_task_lifecycle_events;
        ] );
      ( "export",
        [
          Alcotest.test_case "recorder" `Quick test_telemetry_recorder_feeds_registry;
          Alcotest.test_case "chrome trace" `Quick test_chrome_trace_export;
          Alcotest.test_case "chrome trace escaping and dropped" `Quick
            test_chrome_trace_escaping_and_dropped;
          Alcotest.test_case "profile json" `Quick test_profile_json_export;
          Alcotest.test_case "prometheus" `Quick test_prometheus_export;
        ] );
    ]
