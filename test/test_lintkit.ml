(* The lint engine: one violating and one clean fixture per rule,
   suppression comments, hot-region scoping, the shadow waiver and the
   baseline ratchet.  Fixtures live in strings so the engine's own run
   over test/ never trips on them. *)

module E = Lintkit.Engine
module B = Lintkit.Baseline
module F = Lintkit.Finding

let all_rules _ = true

let lint ?(path = "lib/core/fixture.ml") ?(mli_exists = true) code =
  E.lint_string ~enabled:all_rules ~path ~mli_exists code

let rules (findings, _suppressed) = List.map (fun f -> f.F.rule) findings

let check_rules label expected outcome =
  Alcotest.(check (list string)) label expected (rules outcome)

(* --- catch-all ----------------------------------------------------- *)

let test_catch_all () =
  check_rules "wildcard try handler" [ "catch-all" ]
    (lint "let f g = try g () with _ -> 0\n");
  check_rules "underscore-named binder" [ "catch-all" ]
    (lint "let f g = try g () with _e -> 0\n");
  check_rules "exception case in match" [ "catch-all" ]
    (lint "let f g = match g () with x -> x | exception _ -> 0\n");
  check_rules "specific exception is fine" []
    (lint "let f g = try g () with Not_found -> 0\n");
  check_rules "named binder is fine" []
    (lint "let f g = try g () with e -> raise e\n")

(* --- lock-safety --------------------------------------------------- *)

let test_lock_safety () =
  check_rules "bare lock/unlock" [ "lock-safety" ]
    (lint
       "let f m g =\n\
       \  Mutex.lock m;\n\
       \  let r = g () in\n\
       \  Mutex.unlock m;\n\
       \  r\n");
  check_rules "lock + Fun.protect is fine" []
    (lint
       "let f m g =\n\
       \  Mutex.lock m;\n\
       \  Fun.protect ~finally:(fun () -> Mutex.unlock m) g\n")

(* --- no-poly-compare ----------------------------------------------- *)

let test_poly_compare () =
  check_rules "structural = in lib/core" [ "no-poly-compare" ]
    (lint "let f a b = a = b\n");
  check_rules "structural <> in lib/bstnet" [ "no-poly-compare" ]
    (lint ~path:"lib/bstnet/fixture.ml" "let f a b = a <> b\n");
  check_rules "polymorphic compare" [ "no-poly-compare" ]
    (lint "let f a b = compare a b\n");
  check_rules "polymorphic hash" [ "no-poly-compare" ]
    (lint "let f x = Hashtbl.hash x\n");
  check_rules "out of scope in lib/simkit" []
    (lint ~path:"lib/simkit/fixture.ml" "let f a b = a = b\n");
  check_rules "literal operand is exempt" [] (lint "let f a = a = 3\n")

let test_poly_compare_shadow_waiver () =
  check_rules "monomorphic shadow waives uses" []
    (lint "let ( = ) : int -> int -> bool = Int.equal\nlet f a b = a = b\n");
  check_rules "shadow waives only the shadowed operator" [ "no-poly-compare" ]
    (lint "let ( = ) : int -> int -> bool = Int.equal\nlet f a b = a <> b\n")

(* --- no-alloc ------------------------------------------------------ *)

let hot body = "(* lint: hot *)\n" ^ body ^ "(* lint: hot-end *)\n"

let test_no_alloc () =
  check_rules "list literal in hot region" [ "no-alloc" ]
    (lint (hot "let f x = [ x ]\n"));
  check_rules "tuple in hot region" [ "no-alloc" ]
    (lint (hot "let f a b = (a, b)\n"));
  check_rules "argument closure in hot region" [ "no-alloc" ]
    (lint (hot "let f g x = g (fun () -> x)\n"));
  check_rules "List call in hot region" [ "no-alloc" ]
    (lint (hot "let f l = List.length l\n"));
  check_rules "same code outside a hot region" []
    (lint "let f x = [ x ]\nlet g a b = (a, b)\n");
  check_rules "defined functions are not closures" []
    (lint (hot "let f x = x + 1\nlet g y = f y\n"));
  check_rules "unclosed region runs to end of file" [ "no-alloc" ]
    (lint "(* lint: hot *)\nlet f x = [ x ]\n")

(* --- no-stdout ----------------------------------------------------- *)

let test_no_stdout () =
  check_rules "print_endline under lib/" [ "no-stdout" ]
    (lint ~path:"lib/obskit/fixture.ml"
       "let f () = print_endline \"hi\"\n");
  check_rules "Printf.printf under lib/" [ "no-stdout" ]
    (lint ~path:"lib/obskit/fixture.ml"
       "let f () = Printf.printf \"%d\" 3\n");
  check_rules "stdout is fine outside lib/" []
    (lint ~path:"bin/fixture.ml" "let f () = print_endline \"hi\"\n");
  check_rules "stderr is fine everywhere" []
    (lint ~path:"lib/obskit/fixture.ml" "let f () = prerr_endline \"hi\"\n")

(* --- mli-coverage -------------------------------------------------- *)

let test_mli_coverage () =
  check_rules "lib module without interface" [ "mli-coverage" ]
    (lint ~mli_exists:false "let x = 1\n");
  check_rules "lib module with interface" [] (lint "let x = 1\n");
  check_rules "bin module needs no interface" []
    (lint ~path:"bin/fixture.ml" ~mli_exists:false "let x = 1\n")

(* --- whitespace ---------------------------------------------------- *)

let test_whitespace () =
  check_rules "tab character" [ "whitespace" ] (lint "let x =\t1\n");
  check_rules "trailing whitespace" [ "whitespace" ] (lint "let x = 1 \n");
  check_rules "clean line" [] (lint "let x = 1\n")

(* --- suppression and directives ------------------------------------ *)

let test_suppression () =
  let findings, suppressed =
    lint "(* lint: allow no-poly-compare -- fixture *)\nlet f a b = a = b\n"
  in
  Alcotest.(check (list string)) "allow comment suppresses" []
    (List.map (fun f -> f.F.rule) findings);
  Alcotest.(check int) "suppression is counted" 1 suppressed;
  (* The allow names a rule; other rules on the line still fire. *)
  check_rules "allow is per-rule" [ "no-poly-compare" ]
    (lint "(* lint: allow catch-all -- fixture *)\nlet f a b = a = b\n");
  (* And it reaches only the next line. *)
  check_rules "allow does not reach further lines" [ "no-poly-compare" ]
    (lint
       "(* lint: allow no-poly-compare -- fixture *)\n\
        let g x = x\n\
        let f a b = a = b\n")

let test_directive_errors () =
  check_rules "unknown rule name" [ E.meta_directive ]
    (lint "(* lint: allow bogus-rule -- x *)\nlet x = 1\n");
  check_rules "justification must be separated" [ E.meta_directive ]
    (lint "(* lint: allow no-poly-compare oops *)\nlet x = 1\n");
  check_rules "hot-end without hot" [ E.meta_directive ]
    (lint "(* lint: hot-end *)\nlet x = 1\n");
  check_rules "nested hot" [ E.meta_directive; "no-alloc" ]
    (lint "(* lint: hot *)\n(* lint: hot *)\nlet f x = [ x ]\n");
  check_rules "well-formed directives are silent" []
    (lint (hot "let f x = x\n"))

let test_parse_error () =
  check_rules "unparseable file" [ E.meta_parse_error ] (lint "let = = (\n")

(* --- rule toggles -------------------------------------------------- *)

let test_rule_toggles () =
  let only rule r = String.equal rule r in
  let findings, _ =
    E.lint_string
      ~enabled:(only "catch-all")
      ~path:"lib/core/fixture.ml" ~mli_exists:true
      "let f g = try g () with _ -> g () = 3\n"
  in
  Alcotest.(check (list string)) "disabled rules stay quiet" [ "catch-all" ]
    (List.map (fun f -> f.F.rule) findings)

(* --- findings ------------------------------------------------------ *)

let test_finding_rendering () =
  let f = F.v ~file:"lib/a.ml" ~line:3 ~col:7 ~rule:"catch-all" "dropped" in
  Alcotest.(check string) "to_string" "lib/a.ml:3:7 [catch-all] dropped"
    (F.to_string f);
  Alcotest.(check string) "key is position-independent"
    "lib/a.ml|catch-all|dropped" (F.key f)

(* --- baseline ratchet ---------------------------------------------- *)

let test_baseline_ratchet () =
  let key = "lib/core/x.ml|catch-all|msg" in
  let b = B.of_lines [ "# header"; ""; key ] in
  Alcotest.(check int) "comments and blanks are skipped" 1 (B.size b);
  Alcotest.(check bool) "entry grandfathers its finding" true
    (B.matches b key);
  Alcotest.(check bool) "an unlisted key does not match" false
    (B.matches b "other.ml|rule|msg");
  Alcotest.(check (list string)) "matched entries are not stale" []
    (B.stale b)

let test_baseline_only_shrinks () =
  let b = B.of_lines [ "fixed.ml|catch-all|msg" ] in
  (* No finding matched the entry: the ratchet flags it for removal. *)
  Alcotest.(check (list string)) "unmatched entries are stale"
    [ "fixed.ml|catch-all|msg" ] (B.stale b);
  Alcotest.(check int) "empty baseline is empty" 0 (B.size (B.empty ()))

let () =
  Alcotest.run "lintkit"
    [
      ( "rules",
        [
          Alcotest.test_case "catch-all" `Quick test_catch_all;
          Alcotest.test_case "lock-safety" `Quick test_lock_safety;
          Alcotest.test_case "no-poly-compare" `Quick test_poly_compare;
          Alcotest.test_case "shadow waiver" `Quick
            test_poly_compare_shadow_waiver;
          Alcotest.test_case "no-alloc" `Quick test_no_alloc;
          Alcotest.test_case "no-stdout" `Quick test_no_stdout;
          Alcotest.test_case "mli-coverage" `Quick test_mli_coverage;
          Alcotest.test_case "whitespace" `Quick test_whitespace;
        ] );
      ( "engine",
        [
          Alcotest.test_case "suppression" `Quick test_suppression;
          Alcotest.test_case "directive errors" `Quick test_directive_errors;
          Alcotest.test_case "parse errors" `Quick test_parse_error;
          Alcotest.test_case "rule toggles" `Quick test_rule_toggles;
          Alcotest.test_case "finding rendering" `Quick test_finding_rendering;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "ratchet" `Quick test_baseline_ratchet;
          Alcotest.test_case "only shrinks" `Quick test_baseline_only_shrinks;
        ] );
    ]
