(* Benchmark and reproduction harness.

   Usage:
     dune exec bench/main.exe                  -- every artifact (Fig. 2-4,
                                                  Thm 1-2, ablations, micro)
     dune exec bench/main.exe -- fig2 fig3 ... -- a subset
     dune exec bench/main.exe -- --full ...    -- paper-size workloads
     dune exec bench/main.exe -- --seeds 30    -- paper-size repetitions
     dune exec bench/main.exe -- --jobs 8 ...  -- worker domains (default:
                                                  CBNET_JOBS or cores - 1)
     dune exec bench/main.exe -- --json F      -- machine-readable bench
                                                  export for CI perf tracking
     dune exec bench/main.exe -- bench-smoke --json F
                                               -- tiny-scale smoke matrix
     dune exec bench/main.exe -- --mode bench-smoke --trace t.json --metrics m.prom
                                               -- same, plus a Perfetto trace
                                                  and a Prometheus metrics dump

   Each FIG* table regenerates the rows/series of the corresponding
   figure of the paper; micro runs Bechamel on the core operations;
   overhead-check verifies the null telemetry sink costs nothing;
   chaos sweeps the concurrent executor under deterministic fault
   plans (Faultkit) against its fault-free twin.
   Exit status: 0 on success, 1 on a failed overhead check, 2 on a bad
   flag or artifact name. *)

(* --check-invariants: audit every final tree with Bstnet.Check.structural
   (and, in chaos runs, after every repair).  Set once at startup. *)
let check_invariants_flag = ref false

(* --domains: parallelize each CBN execution's round loop (the plan
   wave of Cbnet.Concurrent); orthogonal to --jobs, which parallelizes
   across seeds.  Results are bit-identical at every setting. *)
let domains_flag = ref 1

(* --profile FILE: phase-level self-profiling of the CBN executor
   (Profkit).  perf runs a dedicated profiled pass, prints the phase
   attribution table and writes the machine-readable profile JSON. *)
let profile_flag = ref None

let micro fmt =
  let open Bechamel in
  let rng = Simkit.Rng.create 7 in
  let tree_n = 1024 in
  (* Pre-built state reused across benchmarked closures. *)
  let tree = Bstnet.Build.balanced tree_n in
  let rec fill v =
    if v = Bstnet.Topology.nil then 0
    else begin
      let w =
        1
        + fill (Bstnet.Topology.left tree v)
        + fill (Bstnet.Topology.right tree v)
      in
      Bstnet.Topology.set_weight tree v w;
      w
    end
  in
  ignore (fill (Bstnet.Topology.root tree));
  let zipf = Workloads.Zipf.create ~alpha:1.2 ~k:4096 in
  let lz_data = Array.init 10_000 (fun i -> (i * 37) mod 512) in
  let small_trace =
    Array.init 256 (fun i -> (i, (i * 7) mod 127, (i * 13) mod 127))
  in
  let config = Cbnet.Config.default in
  let tests =
    [
      Test.make ~name:"rotate_up+undo"
        (Staged.stage (fun () ->
             (* Rotate a mid-tree node up and back: constant-size local
                reconfiguration, the paper's unit of adjustment cost. *)
             let x = 300 in
             let p = Bstnet.Topology.parent tree x in
             Bstnet.Topology.rotate_up tree x;
             Bstnet.Topology.rotate_up tree p));
      Test.make ~name:"delta_promote"
        (Staged.stage (fun () -> ignore (Cbnet.Potential.delta_promote tree 300)));
      Test.make ~name:"step-plan"
        (Staged.stage (fun () ->
             ignore (Cbnet.Step.plan config tree ~current:5 ~dst:900)));
      Test.make ~name:"lca"
        (Staged.stage (fun () -> ignore (Bstnet.Topology.lca tree 5 900)));
      Test.make ~name:"zipf-sample"
        (Staged.stage (fun () -> ignore (Workloads.Zipf.sample zipf rng)));
      Test.make ~name:"lz78-10k-symbols"
        (Staged.stage (fun () -> ignore (Tracekit.Lz78.compressed_bits lz_data)));
      Test.make ~name:"scbn-256msg-n127"
        (Staged.stage (fun () ->
             ignore (Cbnet.Sequential.run (Bstnet.Build.balanced 127) small_trace)));
    ]
  in
  let grouped = Test.make_grouped ~name:"cbnet" ~fmt:"%s/%s" tests in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  Format.fprintf fmt "== MICRO: core operation latencies (monotonic clock) ==@.";
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Bechamel.Analyze.OLS.estimates result with
      | Some [ est ] -> rows := (name, est) :: !rows
      | _ -> ())
    results;
  List.iter
    (fun (name, ns) -> Format.fprintf fmt "%-28s %12.1f ns/run@." name ns)
    (List.sort compare !rows);
  Format.fprintf fmt "@."

(* Run the full (workload x algorithm) matrix cell by cell, timing
   each cell's wall clock.  Seeds fan out across the pool inside each
   cell; the measurements are bit-identical to a sequential run. *)
let timed_matrix ?(sink = Obskit.Sink.null) ?profile ?domains
    (options : Runtime.Figures.options) =
  let domains = match domains with Some d -> d | None -> !domains_flag in
  let run pool =
    List.concat_map
      (fun workload ->
        List.map
          (fun algo ->
            let t0 = Unix.gettimeofday () in
            let c =
              Runtime.Experiment.run_cell ?pool ~scale:options.Runtime.Figures.scale
                ~seeds:options.Runtime.Figures.seeds
                ~lambda:options.Runtime.Figures.lambda
                ~base_seed:options.Runtime.Figures.base_seed ~sink ?profile
                ~check_invariants:!check_invariants_flag
                ~domains ~workload ~algo ()
            in
            (c, Unix.gettimeofday () -. t0))
          Runtime.Algo.all)
      Workloads.Catalog.paper_six
  in
  (* Traced runs always go through a pool (in-caller when jobs <= 1)
     so the trace carries the Pool_task lifecycle even on one core;
     results are bit-identical either way. *)
  if options.Runtime.Figures.jobs <= 1 && not (Obskit.Sink.enabled sink) then
    run None
  else
    Simkit.Pool.with_pool ~num_domains:options.Runtime.Figures.jobs ~sink
      (fun p -> run (Some p))

let detect_commit () =
  let non_empty = function Some s when String.trim s <> "" -> Some s | _ -> None in
  match non_empty (Sys.getenv_opt "GITHUB_SHA") with
  | Some s -> s
  | None -> (
      match non_empty (Sys.getenv_opt "CBNET_COMMIT") with
      | Some s -> s
      | None -> (
          try
            let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
            let line = try String.trim (input_line ic) with End_of_file -> "" in
            match Unix.close_process_in ic with
            | Unix.WEXITED 0 when line <> "" -> line
            | _ -> "unknown"
          with Unix.Unix_error _ | Sys_error _ -> "unknown"))

let iso8601_now () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let export_json ?sink options path =
  let cells = timed_matrix ?sink options in
  Runtime.Export.bench_json ~commit:(detect_commit ())
    ~timestamp:(iso8601_now ()) cells path;
  List.iter
    (fun ((c : Runtime.Experiment.measurement), wall) ->
      Format.printf "%-14s %-5s work=%-12.1f makespan=%-9.1f wall=%.3fs@."
        c.Runtime.Experiment.workload
        (Runtime.Algo.name c.Runtime.Experiment.algo)
        c.Runtime.Experiment.work.Simkit.Stats.mean
        c.Runtime.Experiment.makespan.Simkit.Stats.mean wall)
    cells;
  Format.printf "wrote %d cells to %s@." (List.length cells) path

let export_csv ?(sink = Obskit.Sink.null) dir
    (options : Runtime.Figures.options) =
  let pool_scope f =
    if options.Runtime.Figures.jobs <= 1 then f None
    else
      Simkit.Pool.with_pool ~num_domains:options.Runtime.Figures.jobs ~sink
        (fun p -> f (Some p))
  in
  let cells =
    pool_scope (fun pool ->
        Runtime.Experiment.run_matrix ?pool ~scale:options.Runtime.Figures.scale
          ~seeds:options.Runtime.Figures.seeds
          ~lambda:options.Runtime.Figures.lambda
          ~base_seed:options.Runtime.Figures.base_seed ~sink
          ~check_invariants:!check_invariants_flag ~domains:!domains_flag
          ~workloads:Workloads.Catalog.paper_six ~algos:Runtime.Algo.all ())
  in
  let path = Filename.concat dir "measurements.csv" in
  Runtime.Export.measurements_csv cells path;
  Format.printf "wrote %d cells to %s@." (List.length cells) path

(* Telemetry/profiling overhead guard for CI.  Interleaved min-of-N
   legs over the smoke matrix, all executed in the caller (jobs = 1 —
   pool fan-out would add scheduler noise and the profiled leg cannot
   fan out, Profkit.Profile.t being unsynchronized):

     base1 — no sink argument (the compiled-out default path)
     null  — an explicit null sink (must hit the same path: a gap
             means an instrumentation site stopped guarding with
             [Sink.enabled])
     prof1 — profile-on (null prof_sink): the Profkit contract
     base2 / prof2 — the same pair at [--domains 2], so the profiling
             budget is enforced on the parallel round loop too (the
             wave itself pays for team spawn/join — that is
             parallelism cost, not observability cost, so dom2 walls
             gate against the dom2 untraced baseline, not base1)

   null and prof1 are gated at base1 + 2%, prof2 at base2 + 2% (each
   plus an absolute slack for sub-second smoke runs); a ring-sink run
   is also timed (reported, not gated).  Every leg must produce
   bit-identical measurements — telemetry, profiling and the plan wave
   are all purely observational or speculative-with-serial-commit. *)
let overhead_check options =
  (* Serial execution for every gated leg: identical code path, no
     pool scheduling noise, and run_cell forbids ?profile with ?pool. *)
  let options = { options with Runtime.Figures.jobs = 1 } in
  let time f =
    let t0 = Unix.gettimeofday () in
    let cells = f () in
    (Unix.gettimeofday () -. t0, List.map fst cells)
  in
  let leg f =
    let wall = ref infinity and cells = ref [] in
    (wall, cells, f)
  in
  let base1_wall, base1_cells, base1_run = leg (fun () -> timed_matrix options) in
  let null_wall, null_cells, null_run =
    leg (fun () -> timed_matrix ~sink:Obskit.Sink.null options)
  in
  let prof1_wall, prof1_cells, prof1_run =
    leg (fun () -> timed_matrix ~profile:(Profkit.Profile.create ()) options)
  in
  let base2_wall, base2_cells, base2_run =
    leg (fun () -> timed_matrix ~domains:2 options)
  in
  let prof2_wall, prof2_cells, prof2_run =
    leg (fun () ->
        timed_matrix ~profile:(Profkit.Profile.create ()) ~domains:2 options)
  in
  let legs =
    [
      (base1_wall, base1_cells, base1_run);
      (null_wall, null_cells, null_run);
      (prof1_wall, prof1_cells, prof1_run);
      (base2_wall, base2_cells, base2_run);
      (prof2_wall, prof2_cells, prof2_run);
    ]
  in
  for _ = 1 to 3 do
    List.iter
      (fun (wall, cells, run) ->
        let w, c = time run in
        if w < !wall then wall := w;
        cells := c)
      legs
  done;
  let ring = Obskit.Sink.Ring.create ~capacity:1_000_000 in
  let ring_wall, ring_cells =
    time (fun () -> timed_matrix ~sink:(Obskit.Sink.Ring.sink ring) options)
  in
  Format.printf
    "== OVERHEAD-CHECK: telemetry + profiling (smoke matrix, serial) ==@.";
  let pct base w = 100.0 *. ((w /. base) -. 1.0) in
  Format.printf "untraced             min wall = %.3fs@." !base1_wall;
  Format.printf "null sink            min wall = %.3fs (%+.1f%%)@." !null_wall
    (pct !base1_wall !null_wall);
  Format.printf "profile-on           min wall = %.3fs (%+.1f%%)@." !prof1_wall
    (pct !base1_wall !prof1_wall);
  Format.printf "untraced domains=2   min wall = %.3fs@." !base2_wall;
  Format.printf "profile-on domains=2 min wall = %.3fs (%+.1f%%)@." !prof2_wall
    (pct !base2_wall !prof2_wall);
  Format.printf "ring sink                wall = %.3fs (%+.1f%%, %d events)@."
    ring_wall
    (pct !base1_wall ring_wall)
    (Obskit.Sink.Ring.length ring);
  let ok = ref true in
  let identical =
    !base1_cells = !null_cells
    && !base1_cells = !prof1_cells
    && !base1_cells = !base2_cells
    && !base1_cells = !prof2_cells
    && !base1_cells = ring_cells
  in
  if not identical then begin
    ok := false;
    prerr_endline
      "overhead-check: FAIL: traced/profiled/parallel measurements differ \
       from untraced (telemetry and profiling must be purely observational)"
  end
  else
    Format.printf
      "measurements: bit-identical across all sinks, profile-on and \
       domains 1/2@.";
  (* 2% relative plus 50ms absolute slack so sub-second smoke runs do
     not fail on scheduler noise. *)
  let gate name wall base =
    if !wall > (!base *. 1.02) +. 0.05 then begin
      ok := false;
      Printf.eprintf
        "overhead-check: FAIL: %s wall %.3fs exceeds its untraced baseline \
         %.3fs + 2%%\n"
        name !wall !base
    end
    else Format.printf "%s overhead: within 2%% budget@." name
  in
  gate "null-sink" null_wall base1_wall;
  gate "profile-on" prof1_wall base1_wall;
  gate "profile-on domains=2" prof2_wall base2_wall;
  if not !ok then exit 1

(* The perf --profile pass: the concurrent executor over the same
   smoke matrix (CBN only), every seed profiled into one Profkit
   profile — seeds run in the caller because Profile.t is
   unsynchronized.  Prints the phase attribution table plus the
   speculation counters, writes the machine-readable profile JSON and
   fails loudly if the phase times cover less than 90% of the measured
   round wall (attribution is exclusive and contiguous, so they sum to
   100% by construction — a shortfall means an executor path stopped
   driving the round lifecycle). *)
let perf_profile (options : Runtime.Figures.options) json fmt =
  let open Profkit in
  let profile = Profile.create () in
  List.iter
    (fun workload ->
      ignore
        (Runtime.Experiment.run_cell ~scale:Workloads.Catalog.Smoke
           ~seeds:options.Runtime.Figures.seeds
           ~lambda:options.Runtime.Figures.lambda
           ~base_seed:options.Runtime.Figures.base_seed ~profile
           ~check_invariants:!check_invariants_flag ~domains:!domains_flag
           ~workload ~algo:Runtime.Algo.CBN ()))
    Workloads.Catalog.paper_six;
  let wall = Profile.wall_us profile in
  let covered =
    List.fold_left
      (fun acc phase -> acc +. Profile.total_us profile phase)
      0.0 Profile.phases
  in
  Runtime.Report.profile
    ~title:
      (Printf.sprintf
         "PERF --profile: CBN phase attribution (smoke matrix, seeds=%d, \
          domains=%d)"
         options.Runtime.Figures.seeds !domains_flag)
    profile fmt;
  let coverage = if wall > 0.0 then covered /. wall else 0.0 in
  Format.fprintf fmt "phase coverage: %.1f%% of round wall@."
    (100.0 *. coverage);
  if coverage < 0.9 then begin
    Printf.eprintf
      "perf --profile: FAIL: phase times cover %.1f%% of round wall (< 90%%)\n"
      (100.0 *. coverage);
    exit 1
  end;
  match json with
  | Some path ->
      Runtime.Export.profile_json ~commit:(detect_commit ())
        ~timestamp:(iso8601_now ()) ~workload:"paper-six-smoke"
        ~domains:!domains_flag profile path;
      Format.fprintf fmt "wrote profile to %s@." path
  | None -> ()

(* Single-domain throughput microbenchmark of the concurrent executor
   on the smoke matrix.  Each cell is executed [reps] times and the
   minimum wall clock is kept (the measurements are deterministic, so
   repeats only de-noise the timing); rounds/sec, msgs/sec and
   delivered-hops/sec land in the bench JSON as trend metrics that
   [compare_bench.exe] can diff across commits.  Runs without a pool
   on purpose: the metric is single-run executor speed, not fan-out
   capacity. *)
let perf ?(reps = 3) (options : Runtime.Figures.options) json fmt =
  let algos = Runtime.Algo.perf_pair in
  let cells =
    List.concat_map
      (fun workload ->
        List.map
          (fun algo ->
            let best = ref infinity and result = ref None in
            for _ = 1 to reps do
              let t0 = Unix.gettimeofday () in
              let c =
                Runtime.Experiment.run_cell ~scale:Workloads.Catalog.Smoke
                  ~seeds:options.Runtime.Figures.seeds
                  ~lambda:options.Runtime.Figures.lambda
                  ~base_seed:options.Runtime.Figures.base_seed ~workload ~algo
                  ()
              in
              let w = Unix.gettimeofday () -. t0 in
              if w < !best then best := w;
              result := Some c
            done;
            (Option.get !result, !best))
          algos)
      Workloads.Catalog.paper_six
  in
  Format.fprintf fmt
    "== PERF: concurrent executor throughput (smoke matrix, seeds=%d, \
     min-of-%d walls, single domain) ==@."
    options.Runtime.Figures.seeds reps;
  List.iter
    (fun ((c : Runtime.Experiment.measurement), wall) ->
      let msgs = c.Runtime.Experiment.messages.Simkit.Stats.total in
      let hops = c.Runtime.Experiment.routing.Simkit.Stats.total -. msgs in
      let rate total = if wall > 0.0 then total /. wall else 0.0 in
      Format.fprintf fmt
        "%-14s %-8s rounds/s=%-11.0f msgs/s=%-10.0f hops/s=%-11.0f wall=%.4fs@."
        c.Runtime.Experiment.workload
        (Runtime.Algo.name c.Runtime.Experiment.algo)
        (rate c.Runtime.Experiment.rounds.Simkit.Stats.total)
        (rate msgs) (rate hops) wall)
    cells;
  (match json with
  | Some path ->
      Runtime.Export.bench_json ~commit:(detect_commit ())
        ~timestamp:(iso8601_now ()) cells path;
      Format.fprintf fmt "wrote %d perf cells to %s@." (List.length cells) path
  | None -> ());
  match !profile_flag with
  | Some path -> perf_profile options (Some path) fmt
  | None -> ()

(* Cores-vs-throughput scaling curve of the concurrent executor's
   parallel round loop: the pfabric and hpc traces (the two cells the
   tentpole targets) executed at 1, 2, 4 and 8 domains.  Each point
   keeps the minimum wall clock over [reps] runs; the Run_stats of
   every domain count must be bit-identical to the single-domain
   oracle — a divergence exits 1, because a fast wrong executor is
   worse than no curve.  The JSON root records the host's core count
   so the CI gate (compare_bench --scaling) knows which points were
   measured with real parallelism rather than oversubscription. *)
let perf_scaling ?(reps = 2) (options : Runtime.Figures.options) json fmt =
  let workloads = [ "pfabric"; "hpc" ] in
  let domain_counts = [ 1; 2; 4; 8 ] in
  let host_cores = Domain.recommended_domain_count () in
  Format.fprintf fmt
    "== PERF-SCALING: parallel round loop (domains x rounds/sec, \
     min-of-%d walls, host cores=%d) ==@."
    reps host_cores;
  let rows =
    List.concat_map
      (fun workload ->
        let trace =
          Runtime.Experiment.trace_for ~scale:options.Runtime.Figures.scale
            ~lambda:options.Runtime.Figures.lambda ~workload
            ~seed:options.Runtime.Figures.base_seed ()
        in
        let n = trace.Workloads.Trace.n in
        let runs = Workloads.Trace.to_runs trace in
        let oracle = ref None in
        let base_rate = ref 0.0 in
        List.map
          (fun domains ->
            let best = ref infinity and result = ref None in
            for _ = 1 to reps do
              let t0 = Unix.gettimeofday () in
              let stats =
                Cbnet.Concurrent.run ~domains
                  ~check_invariants:!check_invariants_flag
                  (Bstnet.Build.balanced n) runs
              in
              let w = Unix.gettimeofday () -. t0 in
              if w < !best then best := w;
              result := Some stats
            done;
            let stats = Option.get !result in
            (match !oracle with
            | None -> oracle := Some stats
            | Some o ->
                if not (stats = o) then begin
                  Printf.eprintf
                    "perf-scaling: FAIL: %s at %d domains diverged from the \
                     single-domain oracle\n"
                    workload domains;
                  exit 1
                end);
            let wall = !best in
            let rate total =
              if wall > 0.0 then float_of_int total /. wall else 0.0
            in
            let rps = rate stats.Cbnet.Run_stats.rounds in
            if domains = 1 then base_rate := rps;
            Format.fprintf fmt
              "%-14s domains=%d rounds/s=%-11.0f msgs/s=%-10.0f \
               speedup=%.2fx wall=%.3fs@."
              workload domains rps
              (rate stats.Cbnet.Run_stats.messages)
              (if !base_rate > 0.0 then rps /. !base_rate else 0.0)
              wall;
            ({
               workload;
               domains;
               rounds = stats.Cbnet.Run_stats.rounds;
               messages = stats.Cbnet.Run_stats.messages;
               wall_seconds = wall;
             }
              : Runtime.Export.scaling_row))
          domain_counts)
      workloads
  in
  Format.fprintf fmt "stats bit-identical across all domain counts@.";
  match json with
  | Some path ->
      Runtime.Export.scaling_json ~commit:(detect_commit ())
        ~timestamp:(iso8601_now ()) ~host_cores rows path;
      Format.fprintf fmt "wrote %d scaling rows to %s@." (List.length rows)
        path
  | None -> ()

(* The forest sweeps: the sharded overlay (Forest.Overlay) over
   (workload, n) x shards x domains cells.  Every cell's full
   Overlay.run — directory, router, per-shard topology builds,
   execution — is inside the timed region, so the rates are true
   end-to-end figures.  Correctness is asserted inline, like
   perf-scaling: the 1-shard configuration must be bit-identical to a
   dedicated single-tree Cbnet.Concurrent.run on the same trace, and
   within one shard count every domain fan-out must produce identical
   statistics.  A divergence exits 1. *)

(* Poisson-stamped scaled trace, mirroring Experiment.trace_for's
   seeding so forest cells live on the same arrival process as the
   rest of the harness. *)
let forest_trace ~workload ~n ~m ~seed =
  let trace = Workloads.Catalog.scaled workload ~n ~m ~seed in
  let rng = Simkit.Rng.create (seed lxor 0x5bd1e995) in
  Workloads.Trace.with_poisson_births rng ~lambda:0.05 trace

(* cells: (workload, n, m, shard counts, domain counts).  Cells with
   shards = 1 skip domains > 1 — there is nothing to fan out and the
   run would only repeat the domains = 1 cell. *)
let forest_cells ~title ~reps ~cells ~seed json fmt =
  let host_cores = Domain.recommended_domain_count () in
  Format.fprintf fmt "== %s (min-of-%d walls, host cores=%d) ==@." title reps
    host_cores;
  let rows =
    List.concat_map
      (fun (workload, n, m, shard_counts, domain_counts) ->
        let trace = forest_trace ~workload ~n ~m ~seed in
        let n = trace.Workloads.Trace.n in
        let runs = Workloads.Trace.to_runs trace in
        let oracle =
          Cbnet.Concurrent.run
            ~check_invariants:!check_invariants_flag
            (Bstnet.Build.balanced n) runs
        in
        List.concat_map
          (fun shards ->
            let shard_oracle = ref None in
            List.filter_map
              (fun domains ->
                if shards = 1 && domains > 1 then None
                else begin
                  let best = ref infinity and result = ref None in
                  for _ = 1 to reps do
                    let t0 = Unix.gettimeofday () in
                    let r =
                      Forest.Overlay.run
                        ~check_invariants:!check_invariants_flag ~domains
                        ~shards ~n runs
                    in
                    let w = Unix.gettimeofday () -. t0 in
                    if w < !best then best := w;
                    result := Some r
                  done;
                  let r = Option.get !result in
                  let stats = r.Forest.Overlay.stats in
                  if shards = 1 && not (stats = oracle) then begin
                    Printf.eprintf
                      "forest: FAIL: %s n=%d 1-shard forest diverged from \
                       the single-tree oracle\n"
                      workload n;
                    exit 1
                  end;
                  (match !shard_oracle with
                  | None -> shard_oracle := Some stats
                  | Some o ->
                      if not (stats = o) then begin
                        Printf.eprintf
                          "forest: FAIL: %s n=%d shards=%d diverged at \
                           domains=%d\n"
                          workload n shards domains;
                        exit 1
                      end);
                  let wall = !best in
                  let rate total =
                    if wall > 0.0 then float_of_int total /. wall else 0.0
                  in
                  Format.fprintf fmt
                    "%-10s n=%-8d shards=%-3d domains=%d rounds/s=%-11.0f \
                     msgs/s=%-10.0f cross=%-7d wall=%.3fs@."
                    workload n shards domains
                    (rate stats.Cbnet.Run_stats.rounds)
                    (rate stats.Cbnet.Run_stats.messages)
                    r.Forest.Overlay.cross wall;
                  Some
                    ({
                       workload;
                       n;
                       shards;
                       domains;
                       rounds = stats.Cbnet.Run_stats.rounds;
                       messages = stats.Cbnet.Run_stats.messages;
                       requests = r.Forest.Overlay.requests;
                       cross = r.Forest.Overlay.cross;
                       wall_seconds = wall;
                     }
                      : Runtime.Export.forest_row)
                end)
              domain_counts)
          shard_counts)
      cells
  in
  Format.fprintf fmt
    "1-shard cells bit-identical to the single-tree oracle; stats identical \
     across domain counts@.";
  match json with
  | Some path ->
      Runtime.Export.forest_json ~commit:(detect_commit ())
        ~timestamp:(iso8601_now ()) ~host_cores rows path;
      Format.fprintf fmt "wrote %d forest rows to %s@." (List.length rows) path
  | None -> ()

(* CI smoke: small n, every routing/merging path exercised (uneven
   shards, shard counts that do and do not divide n, fan-out wider
   than the host). *)
let forest_smoke (options : Runtime.Figures.options) json fmt =
  forest_cells ~title:"FOREST-SMOKE: sharded overlay" ~reps:2
    ~cells:
      [
        ("pfabric", 512, 4_000, [ 1; 4; 7 ], [ 1; 2 ]);
        ("skewed", 512, 4_000, [ 1; 4 ], [ 1; 2 ]);
      ]
    ~seed:options.Runtime.Figures.base_seed json fmt

(* The acceptance sweep: pfabric-style cells from n = 1k to n = 1M,
   1-shard oracle checks included at every size. *)
let forest_scaling (options : Runtime.Figures.options) json fmt =
  forest_cells ~title:"FOREST-SCALING: sharded overlay, n from 1k to 1M"
    ~reps:1
    ~cells:
      [
        ("pfabric", 1_000, 10_000, [ 1; 4; 16 ], [ 1; 2 ]);
        ("pfabric", 10_000, 20_000, [ 1; 16 ], [ 1; 2 ]);
        ("pfabric", 100_000, 20_000, [ 1; 16 ], [ 1; 4 ]);
        ("pfabric", 1_000_000, 50_000, [ 1; 16 ], [ 1; 8 ]);
      ]
    ~seed:options.Runtime.Figures.base_seed json fmt

(* CI smoke for the serve loop: shaped streams through
   Servekit.Server.replay, one cell per load-shape kind.  Three
   correctness gates ride along and raise on violation: every cell
   replayed twice must be bit-identical (report text and final tree),
   the fixed shape with an unbounded batch and decay off must
   reproduce Concurrent.run exactly (the batch oracle), and the
   flash-crowd queue must never exceed its cap. *)
let serve_smoke (options : Runtime.Figures.options) json fmt =
  let seed = options.Runtime.Figures.base_seed in
  let reps = 2 in
  (* (shape spec, queue cap, batch_max, decay cadence) *)
  let cells =
    [
      ("fixed:pfabric:n=128,m=4000", 4_096, 0, None);
      ("rampup:skewed:n=128,m=3000,peak=8", 1_024, 256, Some (400, 0.25));
      ( "pausing:zipf:n=128,m=3000,rate=12,on=40,off=160",
        1_024,
        256,
        Some (400, 0.25) );
      ("shaped:uniform:n=128,m=3000,seg=100x2+30x90+100x2", 256, 256, None);
    ]
  in
  Format.fprintf fmt
    "== SERVE-SMOKE: shaped streams through the serve loop (seed=%d, \
     reps=%d) ==@."
    seed reps;
  let rows =
    List.map
      (fun (spec, cap, batch_max, decay) ->
        let shape =
          match Workloads.Shape.of_string spec with
          | Ok s -> s
          | Error e -> failwith (Printf.sprintf "serve-smoke: %s: %s" spec e)
        in
        let trace = Workloads.Shape.schedule shape ~seed in
        let schedule = Workloads.Trace.to_runs trace in
        let n = trace.Workloads.Trace.n in
        let cfg = Servekit.Server.config ~queue_capacity:cap ~batch_max ~n () in
        let run () =
          let tree = Bstnet.Build.balanced n in
          let epoch =
            match decay with
            | None -> Servekit.Epoch.disabled ()
            | Some (every, factor) ->
                Servekit.Epoch.create ~every_rounds:every ~factor ()
          in
          let t0 = Unix.gettimeofday () in
          let report = Servekit.Server.replay ~epoch cfg tree schedule in
          let wall = Unix.gettimeofday () -. t0 in
          (report, Bstnet.Serialize.to_string tree, wall)
        in
        let runs = List.init reps (fun _ -> run ()) in
        let (r : Servekit.Server.report), tree0, _ = List.hd runs in
        let wall =
          List.fold_left
            (fun acc (_, _, w) -> Float.min acc w)
            infinity runs
        in
        (* Gate 1: replay determinism — identical report and tree. *)
        List.iter
          (fun ((r' : Servekit.Server.report), tree', _) ->
            let show x = Format.asprintf "%a" Servekit.Server.pp_report x in
            if show r' <> show r || tree' <> tree0 then
              failwith
                (Printf.sprintf "serve-smoke: %s: replay not bit-identical"
                   spec))
          (List.tl runs);
        (* Gate 2: batch oracle — the fixed shape with one unbounded
           batch and no decay is Concurrent.run verbatim. *)
        (match shape.Workloads.Shape.kind with
        | Workloads.Shape.Fixed when batch_max = 0 && decay = None ->
            let oracle =
              Cbnet.Concurrent.run (Bstnet.Build.balanced n) schedule
            in
            if r.Servekit.Server.stats <> oracle then
              failwith
                (Printf.sprintf
                   "serve-smoke: %s: serve stats diverge from the batch \
                    oracle"
                   spec)
        | _ -> ());
        (* Gate 3: back-pressure stays bounded. *)
        if r.Servekit.Server.max_queue_depth > cap then
          failwith
            (Printf.sprintf "serve-smoke: %s: queue depth %d exceeds cap %d"
               spec r.Servekit.Server.max_queue_depth cap);
        let stats = r.Servekit.Server.stats in
        Format.fprintf fmt
          "%-24s n=%-4d seen=%-5d shed=%-5d batches=%-3d decays=%-2d \
           busy=%-6d idle=%-6d q_max=%-5d wall=%.3fs@."
          (Workloads.Shape.label shape)
          n r.Servekit.Server.seen r.Servekit.Server.shed
          r.Servekit.Server.batches r.Servekit.Server.decays
          r.Servekit.Server.busy_rounds r.Servekit.Server.idle_rounds
          r.Servekit.Server.max_queue_depth wall;
        let q = r.Servekit.Server.queue_depth in
        ({
           shape = Workloads.Shape.label shape;
           n;
           seed;
           requests = r.Servekit.Server.seen;
           admitted = r.Servekit.Server.admitted;
           shed = r.Servekit.Server.shed;
           batches = r.Servekit.Server.batches;
           decays = r.Servekit.Server.decays;
           busy_rounds = r.Servekit.Server.busy_rounds;
           idle_rounds = r.Servekit.Server.idle_rounds;
           messages = stats.Cbnet.Run_stats.messages;
           makespan = stats.Cbnet.Run_stats.makespan;
           q_max = r.Servekit.Server.max_queue_depth;
           q_p50 = Profkit.Histogram.p50 q;
           q_p95 = Profkit.Histogram.p95 q;
           q_p99 = Profkit.Histogram.p99 q;
           wall_seconds = wall;
         }
          : Runtime.Export.serve_row))
      cells
  in
  Format.fprintf fmt
    "replays bit-identical; fixed shape matches the batch oracle; queues \
     stayed under their caps@.";
  match json with
  | Some path ->
      Runtime.Export.serve_json ~commit:(detect_commit ())
        ~timestamp:(iso8601_now ()) rows path;
      Format.fprintf fmt "wrote %d serve rows to %s@." (List.length rows) path
  | None -> ()

(* The fault plans of the chaos sweep: one stressor per fault family
   plus a kitchen-sink mix.  Rates are low enough that every run still
   drains well inside the round budget; the plan text (printed and
   exported) reproduces any row by itself. *)
let chaos_plans =
  let open Faultkit.Plan in
  [
    ( "crash-light",
      make ~seed:11
        [ crash ~at:(periodic 25) ~duration:5 (random_nodes ~rate:0.02) ] );
    ("crash-deep", make ~seed:12 [ crash ~at:(periodic 40) ~duration:8 deepest ]);
    ("lossy", make ~seed:13 [ lose ~rate:0.02 ]);
    ( "dup-delay",
      make ~seed:14 [ duplicate ~rate:0.01; delay ~rate:0.02 ~rounds:3 ] );
    ("abort", make ~seed:15 [ abort_rotations ~rate:0.1 ]);
    ( "everything",
      make ~seed:16
        [
          crash ~at:(periodic 30) ~duration:5 (random_nodes ~rate:0.01);
          lose ~rate:0.01;
          duplicate ~rate:0.005;
          delay ~rate:0.01 ~rounds:2;
          abort_rotations ~rate:0.05;
        ] );
  ]

(* Chaos sweep: each workload runs once fault-free (the twin) and once
   per plan with invariant checking after every repair and at the end.
   A run that fails to drain within the round budget or corrupts the
   tree raises — chaos is a correctness gate, not just a table. *)
let chaos (options : Runtime.Figures.options) json fmt =
  let seed = options.Runtime.Figures.base_seed in
  let rows =
    List.concat_map
      (fun workload ->
        let trace =
          Runtime.Experiment.trace_for ~scale:Workloads.Catalog.Smoke
            ~lambda:options.Runtime.Figures.lambda ~workload ~seed ()
        in
        let n = trace.Workloads.Trace.n in
        let runs = Workloads.Trace.to_runs trace in
        let clean = Cbnet.Concurrent.run (Bstnet.Build.balanced n) runs in
        List.map
          (fun (name, plan) ->
            let t0 = Unix.gettimeofday () in
            let stats =
              Cbnet.Concurrent.run ~max_rounds:2_000_000 ~faults:plan
                ~check_invariants:true (Bstnet.Build.balanced n) runs
            in
            let wall = Unix.gettimeofday () -. t0 in
            ( name,
              clean,
              {
                Runtime.Export.workload;
                plan = Faultkit.Plan.to_string plan;
                seed;
                stats;
                clean_makespan = clean.Cbnet.Run_stats.makespan;
                wall_seconds = wall;
              } ))
          chaos_plans)
      Workloads.Catalog.paper_six
  in
  Format.fprintf fmt
    "== CHAOS: concurrent executor under fault injection (smoke scale, \
     seed=%d, invariants checked) ==@."
    seed;
  List.iter
    (fun (name, (clean : Cbnet.Run_stats.t), (r : Runtime.Export.chaos_row)) ->
      let s = r.Runtime.Export.stats in
      let c = s.Cbnet.Run_stats.chaos in
      let inflation =
        if clean.Cbnet.Run_stats.makespan > 0 then
          float_of_int s.Cbnet.Run_stats.makespan
          /. float_of_int clean.Cbnet.Run_stats.makespan
        else 0.0
      in
      Format.fprintf fmt
        "%-14s %-12s delivered=%-5d makespan=%-6d (x%.2f) crashes=%-4d \
         parks=%-5d lost=%-4d dup=%-3d delayed=%-4d repairs=%-3d wall=%.3fs@."
        r.Runtime.Export.workload name s.Cbnet.Run_stats.messages
        s.Cbnet.Run_stats.makespan inflation c.Cbnet.Run_stats.crashes
        c.Cbnet.Run_stats.parks c.Cbnet.Run_stats.lost
        c.Cbnet.Run_stats.duplicated c.Cbnet.Run_stats.delayed
        c.Cbnet.Run_stats.repairs r.Runtime.Export.wall_seconds)
    rows;
  Format.fprintf fmt "all runs drained; invariants held after every repair@.";
  match json with
  | Some path ->
      Runtime.Export.chaos_json ~commit:(detect_commit ())
        ~timestamp:(iso8601_now ())
        (List.map (fun (_, _, r) -> r) rows)
        path;
      Format.fprintf fmt "wrote %d chaos rows to %s@." (List.length rows) path
  | None -> ()

let usage =
  "usage: main.exe [--full] [--seeds N] [--jobs N] [--domains N] [--csv DIR] \
   [--json FILE] [--trace FILE] [--metrics FILE] [--profile FILE] \
   [--check-invariants] [--mode ARTIFACT] [ARTIFACT ...]\n\
   artifacts: fig2 fig3 fig4 thm1 thm2 ablation timeline latency trace-map \
   micro bench-smoke overhead-check perf perf-scaling forest-smoke \
   forest-scaling serve-smoke chaos\n\
   (no artifact: reproduce everything; bench-smoke: tiny-scale matrix for CI,\n\
  \ best combined with --json; --mode NAME is an alias for naming NAME)\n\
   --jobs N parallelizes seed runs over N domains (default: CBNET_JOBS, else\n\
  \ cores - 1); results are bit-identical at every setting.\n\
   --domains N parallelizes each CBN run's round loop (bit-identical; default\n\
  \ 1); perf-scaling sweeps domains 1/2/4/8 itself and ignores the flag.\n\
   --trace FILE writes a Chrome/Perfetto trace of the matrix runs\n\
  \ (bench-smoke, --json, --csv); --metrics FILE writes Prometheus text.\n\
   --profile FILE (perf only) runs a profiled CBN pass: phase attribution\n\
  \ table on stdout, machine-readable profile JSON to FILE.\n\
   --check-invariants audits every final tree with Bstnet.Check.structural;\n\
  \ chaos always checks, including after every mid-run repair."

let die fmt =
  Format.kasprintf
    (fun msg ->
      prerr_endline ("main.exe: " ^ msg);
      prerr_endline usage;
      exit 2)
    fmt

let () =
  let full = ref false in
  let seeds = ref None in
  let jobs = ref None in
  let csv = ref None in
  let json = ref None in
  let trace = ref None in
  let metrics = ref None in
  let names = ref [] in
  let int_value flag v =
    match int_of_string_opt v with
    | Some n when n >= 1 -> n
    | _ -> die "%s expects a positive integer, got %S" flag v
  in
  let rec parse = function
    | [] -> ()
    | "--full" :: rest ->
        full := true;
        parse rest
    | [ "--seeds" ] | [ "--jobs" ] | [ "--domains" ] | [ "--csv" ]
    | [ "--json" ] | [ "--trace" ] | [ "--metrics" ] | [ "--mode" ]
    | [ "--profile" ] ->
        die "missing value for trailing option"
    | "--seeds" :: v :: rest ->
        seeds := Some (int_value "--seeds" v);
        parse rest
    | "--jobs" :: v :: rest ->
        jobs := Some (int_value "--jobs" v);
        parse rest
    | "--domains" :: v :: rest ->
        domains_flag := int_value "--domains" v;
        parse rest
    | "--csv" :: dir :: rest ->
        csv := Some dir;
        parse rest
    | "--json" :: file :: rest ->
        json := Some file;
        parse rest
    | "--trace" :: file :: rest ->
        trace := Some file;
        parse rest
    | "--metrics" :: file :: rest ->
        metrics := Some file;
        parse rest
    | "--profile" :: file :: rest ->
        profile_flag := Some file;
        parse rest
    | "--check-invariants" :: rest ->
        check_invariants_flag := true;
        parse rest
    | "--mode" :: name :: rest ->
        names := name :: !names;
        parse rest
    | arg :: _ when String.length arg >= 2 && String.sub arg 0 2 = "--" ->
        die "unknown option %s" arg
    | name :: rest ->
        names := name :: !names;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let names = List.rev !names in
  let options =
    {
      Runtime.Figures.scale =
        (if !full then Workloads.Catalog.Full else Workloads.Catalog.Default);
      seeds = (match !seeds with Some s -> s | None -> if !full then 30 else 3);
      lambda = Runtime.Figures.default_options.Runtime.Figures.lambda;
      base_seed = Runtime.Figures.default_options.Runtime.Figures.base_seed;
      jobs = (match !jobs with Some j -> j | None -> Simkit.Pool.default_jobs ());
    }
  in
  let smoke_options =
    {
      options with
      Runtime.Figures.scale = Workloads.Catalog.Smoke;
      seeds = (match !seeds with Some s -> s | None -> 2);
    }
  in
  let fmt = Format.std_formatter in
  (* Telemetry sinks requested on the command line: a bounded ring for
     the Perfetto trace and a metrics registry for Prometheus.  The tee
     collapses to the null sink when neither flag is given, so the
     default run stays on the zero-cost path. *)
  let ring =
    match !trace with
    | Some _ -> Some (Obskit.Sink.Ring.create ~capacity:1_000_000)
    | None -> None
  in
  let registry =
    match !metrics with Some _ -> Some (Simkit.Metrics.create ()) | None -> None
  in
  let sink =
    Obskit.Sink.tee
      ((match ring with Some r -> [ Obskit.Sink.Ring.sink r ] | None -> [])
      @
      match registry with
      | Some reg -> [ Runtime.Telemetry.metrics_sink reg ]
      | None -> [])
  in
  let artifacts =
    [
      ("fig2", fun () -> Runtime.Figures.fig2 ~options fmt);
      ("fig3", fun () -> Runtime.Figures.fig3 ~options fmt);
      ("fig4", fun () -> Runtime.Figures.fig4 ~options fmt);
      ("thm1", fun () -> Runtime.Figures.thm1 ~options fmt);
      ("thm2", fun () -> Runtime.Figures.thm2 ~options fmt);
      ( "ablation",
        fun () ->
          Runtime.Figures.ablation_delta ~options fmt;
          Runtime.Figures.ablation_reset ~options fmt;
          Runtime.Figures.ablation_mtr ~options fmt;
          Runtime.Figures.ablation_rcost ~options fmt );
      ("timeline", fun () -> Runtime.Figures.timeline ~options fmt);
      ("latency", fun () -> Runtime.Figures.latency ~options fmt);
      ("trace-map", fun () -> Runtime.Figures.trace_map_sweep ~options fmt);
      ("micro", fun () -> micro fmt);
      ( "bench-smoke",
        fun () ->
          Format.printf
            "== BENCH-SMOKE: tiny-scale matrix (seeds=%d, jobs=%d) ==@."
            smoke_options.Runtime.Figures.seeds
            smoke_options.Runtime.Figures.jobs;
          match !json with
          | Some path -> export_json ~sink smoke_options path
          | None ->
              List.iter
                (fun ((c : Runtime.Experiment.measurement), wall) ->
                  Format.printf
                    "%-14s %-5s work=%-12.1f makespan=%-9.1f wall=%.3fs@."
                    c.Runtime.Experiment.workload
                    (Runtime.Algo.name c.Runtime.Experiment.algo)
                    c.Runtime.Experiment.work.Simkit.Stats.mean
                    c.Runtime.Experiment.makespan.Simkit.Stats.mean wall)
                (timed_matrix ~sink smoke_options) );
      ("overhead-check", fun () -> overhead_check smoke_options);
      ("chaos", fun () -> chaos smoke_options !json fmt);
      ( "perf",
        fun () ->
          let perf_options =
            {
              smoke_options with
              Runtime.Figures.seeds =
                (match !seeds with Some s -> s | None -> 3);
            }
          in
          perf perf_options !json fmt );
      ( "perf-scaling",
        fun () ->
          (* Default scale even under --full: the curve is a CI trend
             metric, and paper-size traces would multiply its wall
             clock by the domain sweep. *)
          let scaling_options =
            { options with Runtime.Figures.scale = Workloads.Catalog.Default }
          in
          perf_scaling scaling_options !json fmt );
      ("forest-smoke", fun () -> forest_smoke options !json fmt);
      ("forest-scaling", fun () -> forest_scaling options !json fmt);
      ("serve-smoke", fun () -> serve_smoke options !json fmt);
    ]
  in
  (* Validate every artifact name before running anything: CI must
     fail loudly on a typo, not run a partial subset first. *)
  List.iter
    (fun name ->
      if not (List.mem_assoc name artifacts) then
        die "unknown artifact %S (known: %s)" name
          (String.concat ", " (List.map fst artifacts)))
    names;
  (match !csv with Some dir -> export_csv ~sink dir options | None -> ());
  (match !json with
  | Some path
    when
      not
        (List.mem "bench-smoke" names || List.mem "perf" names
        || List.mem "perf-scaling" names || List.mem "forest-smoke" names
        || List.mem "forest-scaling" names || List.mem "serve-smoke" names
        || List.mem "chaos" names) ->
      (* bench-smoke, perf, perf-scaling, the forest sweeps,
         serve-smoke and chaos write the JSON themselves. *)
      export_json ~sink options path
  | _ -> ());
  (match names with
  | [] ->
      if !csv = None && !json = None then begin
        (* Everything: figures share one matrix computation. *)
        Runtime.Figures.all ~options fmt;
        micro fmt
      end
  | names -> List.iter (fun name -> (List.assoc name artifacts) ()) names);
  (match (!trace, ring) with
  | Some path, Some r ->
      let dropped = Obskit.Sink.Ring.dropped r in
      Runtime.Export.chrome_trace ~dropped (Obskit.Sink.Ring.contents r) path;
      Format.printf "wrote %d trace events to %s%s@."
        (Obskit.Sink.Ring.length r)
        path
        (if dropped > 0 then Printf.sprintf " (%d oldest dropped)" dropped
         else "")
  | _ -> ());
  match (!metrics, registry) with
  | Some path, Some reg ->
      let events_dropped =
        match ring with Some r -> Obskit.Sink.Ring.dropped r | None -> 0
      in
      Runtime.Export.prometheus ~events_dropped reg path;
      Format.printf "wrote metrics to %s@." path
  | _ -> ()
