(* Throughput-regression comparator for bench_json artifacts.

     compare_bench OLD.json NEW.json [--threshold PCT]
     compare_bench --scaling BASELINE.json NEW.json [--threshold PCT]
                   [--min-speedup X]
     compare_bench --profile BASELINE.json NEW.json

   Default mode matches cells by (workload, algo) and compares
   rounds_per_sec.  Exit 1 when any matching cell regressed by more
   than the threshold (default 20%), exit 2 on unreadable input.
   Cells present on only one side, or missing the metric (older
   artifacts predate it), are reported and skipped — the step must
   stay useful against historical files.

   --profile diffs two profile_json artifacts (bench perf --profile):
   per-phase share-of-round-wall deltas in percentage points plus the
   speculation rates (stamp hit rate, wave imbalance).  Purely
   advisory — phase shares shift with machine load and domain count,
   so the step reports trends and exits 0 unless an input is
   unreadable (exit 2).

   --scaling compares two scaling_json curves (bench perf-scaling)
   instead: rows match by (workload, domains), and each file's
   host_cores decides which checks are meaningful on the machines
   involved.  A per-row rounds/sec drop beyond the threshold is
   blocking only when BOTH hosts had at least that row's domain count
   in cores (a 4-domain point measured on a 1-core box is
   oversubscription noise, not a regression); the curve-shape gate —
   4-domain rounds/sec must reach min-speedup (default 1.5) x the
   1-domain figure — is blocking only when the NEW host has >= 4
   cores.  Everything else prints as "warn" and does not fail CI.

   --serve diffs two serve_json artifacts (bench serve-smoke): rows
   match by shape label, and the report shows sustained rounds/sec,
   shed counts and queue-depth quantiles side by side.  Purely
   advisory — serve throughput mixes executor speed with shape
   arithmetic and shed behaviour shifts legitimately with policy
   changes — so the step reports trends and exits 0 unless an input
   is unreadable (exit 2).

   --forest compares two forest_json artifacts (bench forest-smoke /
   forest-scaling) the same way: rows match by (workload, n, shards,
   domains), a rounds/sec drop beyond the threshold is blocking only
   when both hosts had at least that row's domain count in cores,
   and there is no speedup floor — shard decomposition changes the
   algorithm's work, so only like-for-like cells are compared.

   The repository deliberately has no JSON dependency; this is a
   minimal recursive-descent parser for the subset bench_json emits
   (objects, arrays, strings with escapes, numbers, booleans, null). *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    String.iter expect word;
    value
  in
  let string_body () =
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '\000' -> fail "unterminated string"
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              (* Pass code points through as '?': bench_json never
                 emits \u escapes; tolerate them without decoding. *)
              advance ();
              advance ();
              advance ();
              Buffer.add_char b '?'
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let numchar c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while numchar (peek ()) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else Obj (members [])
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          List []
        end
        else List (elements [])
    | '"' ->
        advance ();
        Str (string_body ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | c when c = '-' || (c >= '0' && c <= '9') -> Num (number ())
    | _ -> fail "unexpected character"
  and members acc =
    skip_ws ();
    expect '"';
    let k = string_body () in
    skip_ws ();
    expect ':';
    let v = value () in
    skip_ws ();
    match peek () with
    | ',' ->
        advance ();
        members ((k, v) :: acc)
    | '}' ->
        advance ();
        List.rev ((k, v) :: acc)
    | _ -> fail "expected ',' or '}'"
  and elements acc =
    let v = value () in
    skip_ws ();
    match peek () with
    | ',' ->
        advance ();
        elements (v :: acc)
    | ']' ->
        advance ();
        List.rev (v :: acc)
    | _ -> fail "expected ',' or ']'"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field obj k =
  match obj with Obj kvs -> List.assoc_opt k kvs | _ -> None

let str_field obj k =
  match field obj k with Some (Str s) -> Some s | _ -> None

let num_field obj k =
  match field obj k with Some (Num f) -> Some f | _ -> None

type cell = { workload : string; algo : string; rps : float option }

let read_json path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  parse body

let cells_of_file path =
  let root = read_json path in
  match field root "cells" with
  | Some (List cs) ->
      List.filter_map
        (fun c ->
          match (str_field c "workload", str_field c "algo") with
          | Some workload, Some algo ->
              Some { workload; algo; rps = num_field c "rounds_per_sec" }
          | _ -> None)
        cs
  | _ -> raise (Parse_error "no \"cells\" array")

(* One perf-scaling curve point (Runtime.Export.scaling_json). *)
type point = { workload : string; domains : int; rps : float option }

let scaling_of_file path =
  let root = read_json path in
  let host_cores =
    match num_field root "host_cores" with
    | Some c -> int_of_float c
    | None -> raise (Parse_error "no \"host_cores\" field")
  in
  match field root "rows" with
  | Some (List rs) ->
      let points =
        List.filter_map
          (fun r ->
            match (str_field r "workload", num_field r "domains") with
            | Some workload, Some d ->
                Some
                  {
                    workload;
                    domains = int_of_float d;
                    rps = num_field r "rounds_per_sec";
                  }
            | _ -> None)
          rs
      in
      (host_cores, points)
  | _ -> raise (Parse_error "no \"rows\" array")

(* The --scaling gate: per-point regressions plus the curve-shape
   (speedup) floor, each blocking only where the hosts' core counts
   make the measurement meaningful.  Returns the failure count. *)
let compare_scaling ~threshold ~min_speedup old_path new_path =
  let old_cores, old_points = scaling_of_file old_path in
  let new_cores, new_points = scaling_of_file new_path in
  Printf.printf "scaling: baseline host_cores=%d, current host_cores=%d\n"
    old_cores new_cores;
  let failures = ref 0 and compared = ref 0 in
  List.iter
    (fun (o : point) ->
      match
        List.find_opt
          (fun (p : point) ->
            p.workload = o.workload && p.domains = o.domains)
          new_points
      with
      | None ->
          Printf.printf "SKIP  %-14s domains=%d only in %s\n" o.workload
            o.domains old_path
      | Some nw -> (
          match (o.rps, nw.rps) with
          | Some orps, Some nrps when orps > 0.0 ->
              incr compared;
              let change = (nrps -. orps) /. orps *. 100.0 in
              let meaningful =
                old_cores >= o.domains && new_cores >= o.domains
              in
              let bad = change < -.threshold && meaningful in
              if bad then incr failures;
              Printf.printf "%s  %-14s domains=%d %12.0f -> %12.0f  %+6.1f%%%s\n"
                (if bad then "FAIL"
                 else if change < -.threshold then "warn"
                 else "ok  ")
                o.workload o.domains orps nrps change
                (if meaningful then ""
                 else " (advisory: fewer cores than domains)")
          | _ ->
              Printf.printf "SKIP  %-14s domains=%d rounds_per_sec missing\n"
                o.workload o.domains))
    old_points;
  let workloads =
    List.sort_uniq compare
      (List.map (fun (p : point) -> p.workload) new_points)
  in
  List.iter
    (fun workload ->
      let rps_at d =
        match
          List.find_opt
            (fun (p : point) -> p.workload = workload && p.domains = d)
            new_points
        with
        | Some { rps = Some r; _ } when r > 0.0 -> Some r
        | _ -> None
      in
      match (rps_at 1, rps_at 4) with
      | Some r1, Some r4 ->
          let speedup = r4 /. r1 in
          let meaningful = new_cores >= 4 in
          let bad = speedup < min_speedup && meaningful in
          if bad then incr failures;
          Printf.printf "%s  %-14s speedup(4/1)=%.2fx (floor %.2fx)%s\n"
            (if bad then "FAIL"
             else if speedup < min_speedup then "warn"
             else "ok  ")
            workload speedup min_speedup
            (if meaningful then ""
             else " (advisory: host has < 4 cores)")
      | _ ->
          Printf.printf "SKIP  %-14s speedup: 1- or 4-domain point missing\n"
            workload)
    workloads;
  Printf.printf "compared %d scaling points, %d failure(s)\n" !compared
    !failures;
  !failures

(* One forest_json row (Runtime.Export.forest_json). *)
type frow = {
  fworkload : string;
  fn : int;
  fshards : int;
  fdomains : int;
  frps : float option;
}

let forest_of_file path =
  let root = read_json path in
  let host_cores =
    match num_field root "host_cores" with
    | Some c -> int_of_float c
    | None -> raise (Parse_error "no \"host_cores\" field")
  in
  match field root "rows" with
  | Some (List rs) ->
      let rows =
        List.filter_map
          (fun r ->
            match
              ( str_field r "workload",
                num_field r "n",
                num_field r "shards",
                num_field r "domains" )
            with
            | Some fworkload, Some n, Some k, Some d ->
                Some
                  {
                    fworkload;
                    fn = int_of_float n;
                    fshards = int_of_float k;
                    fdomains = int_of_float d;
                    frps = num_field r "rounds_per_sec";
                  }
            | _ -> None)
          rs
      in
      (host_cores, rows)
  | _ -> raise (Parse_error "no \"rows\" array")

(* The --forest gate: per-row regressions on matching
   (workload, n, shards, domains) cells, blocking only where both
   hosts' core counts cover the row's domain count.  Returns the
   failure count. *)
let compare_forest ~threshold old_path new_path =
  let old_cores, old_rows = forest_of_file old_path in
  let new_cores, new_rows = forest_of_file new_path in
  Printf.printf "forest: baseline host_cores=%d, current host_cores=%d\n"
    old_cores new_cores;
  let failures = ref 0 and compared = ref 0 in
  List.iter
    (fun (o : frow) ->
      match
        List.find_opt
          (fun (r : frow) ->
            r.fworkload = o.fworkload && r.fn = o.fn && r.fshards = o.fshards
            && r.fdomains = o.fdomains)
          new_rows
      with
      | None ->
          Printf.printf "SKIP  %-10s n=%-8d shards=%-3d domains=%d only in %s\n"
            o.fworkload o.fn o.fshards o.fdomains old_path
      | Some nw -> (
          match (o.frps, nw.frps) with
          | Some orps, Some nrps when orps > 0.0 ->
              incr compared;
              let change = (nrps -. orps) /. orps *. 100.0 in
              let meaningful =
                old_cores >= o.fdomains && new_cores >= o.fdomains
              in
              let bad = change < -.threshold && meaningful in
              if bad then incr failures;
              Printf.printf
                "%s  %-10s n=%-8d shards=%-3d domains=%d %12.0f -> %12.0f  \
                 %+6.1f%%%s\n"
                (if bad then "FAIL"
                 else if change < -.threshold then "warn"
                 else "ok  ")
                o.fworkload o.fn o.fshards o.fdomains orps nrps change
                (if meaningful then ""
                 else " (advisory: fewer cores than domains)")
          | _ ->
              Printf.printf
                "SKIP  %-10s n=%-8d shards=%-3d domains=%d rounds_per_sec \
                 missing\n"
                o.fworkload o.fn o.fshards o.fdomains))
    old_rows;
  List.iter
    (fun (r : frow) ->
      if
        not
          (List.exists
             (fun (o : frow) ->
               o.fworkload = r.fworkload && o.fn = r.fn
               && o.fshards = r.fshards && o.fdomains = r.fdomains)
             old_rows)
      then
        Printf.printf "NEW   %-10s n=%-8d shards=%-3d domains=%d only in %s\n"
          r.fworkload r.fn r.fshards r.fdomains new_path)
    new_rows;
  Printf.printf "compared %d forest rows, %d failure(s)\n" !compared !failures;
  !failures

(* One serve_json row (Runtime.Export.serve_json), reduced to what
   the advisory diff needs. *)
type srow = {
  sshape : string;
  srps : float option;
  sshed : float option;
  sq_p95 : float option;
}

let serve_of_file path =
  let root = read_json path in
  match field root "rows" with
  | Some (List rs) ->
      List.filter_map
        (fun r ->
          match str_field r "shape" with
          | Some sshape ->
              Some
                {
                  sshape;
                  srps = num_field r "rounds_per_sec";
                  sshed = num_field r "shed";
                  sq_p95 = num_field r "q_p95";
                }
          | None -> None)
        rs
  | _ -> raise (Parse_error "no \"rows\" array")

(* The --serve advisory report: never blocking, always exit 0 on
   readable inputs. *)
let compare_serve old_path new_path =
  let old_rows = serve_of_file old_path in
  let new_rows = serve_of_file new_path in
  let show = function Some f -> Printf.sprintf "%.0f" f | None -> "-" in
  List.iter
    (fun (o : srow) ->
      match
        List.find_opt (fun (r : srow) -> r.sshape = o.sshape) new_rows
      with
      | None -> Printf.printf "SKIP  %-24s only in %s\n" o.sshape old_path
      | Some nw -> (
          (match (o.sshed, nw.sshed) with
          | Some a, Some b when a <> b ->
              Printf.printf "info  %-24s shed %s -> %s, q_p95 %s -> %s\n"
                o.sshape (show o.sshed) (show nw.sshed) (show o.sq_p95)
                (show nw.sq_p95)
          | _ -> ());
          match (o.srps, nw.srps) with
          | Some orps, Some nrps when orps > 0.0 ->
              Printf.printf "info  %-24s rounds/s %12.0f -> %12.0f  %+6.1f%%\n"
                o.sshape orps nrps
                ((nrps -. orps) /. orps *. 100.0)
          | _ -> Printf.printf "SKIP  %-24s rounds_per_sec missing\n" o.sshape))
    old_rows;
  List.iter
    (fun (r : srow) ->
      if not (List.exists (fun (o : srow) -> o.sshape = r.sshape) old_rows)
      then Printf.printf "NEW   %-24s only in %s\n" r.sshape new_path)
    new_rows;
  Printf.printf "serve diff is advisory; not gating\n"

(* One profile_json artifact (Runtime.Export.profile_json), reduced
   to what the advisory diff needs. *)
type prof = {
  domains : int;
  rounds : int;
  shares : (string * float) list;  (** phase -> share of round wall. *)
  stamp_hit_rate : float option;
  avg_imbalance : float option;
}

let profile_of_file path =
  let root = read_json path in
  let shares =
    match field root "phases" with
    | Some (List ps) ->
        List.filter_map
          (fun p ->
            match (str_field p "phase", num_field p "share") with
            | Some name, Some share -> Some (name, share)
            | _ -> None)
          ps
    | _ -> raise (Parse_error "no \"phases\" array")
  in
  let spec = field root "speculation" in
  let spec_field k =
    match spec with Some s -> num_field s k | None -> None
  in
  {
    domains =
      (match num_field root "domains" with
      | Some d -> int_of_float d
      | None -> 0);
    rounds =
      (match num_field root "rounds" with
      | Some r -> int_of_float r
      | None -> 0);
    shares;
    stamp_hit_rate = spec_field "stamp_hit_rate";
    avg_imbalance = spec_field "avg_wave_imbalance";
  }

(* The --profile advisory report: never blocking, always exit 0 on
   readable inputs. *)
let compare_profile old_path new_path =
  let o = profile_of_file old_path in
  let nw = profile_of_file new_path in
  Printf.printf
    "profile: baseline domains=%d rounds=%d, current domains=%d rounds=%d\n"
    o.domains o.rounds nw.domains nw.rounds;
  if o.domains <> nw.domains then
    Printf.printf
      "note  domain counts differ; phase shares are not comparable 1:1\n";
  List.iter
    (fun (phase, nshare) ->
      match List.assoc_opt phase o.shares with
      | Some oshare ->
          Printf.printf "info  %-16s share %5.1f%% -> %5.1f%%  (%+.1fpp)\n"
            phase (100.0 *. oshare) (100.0 *. nshare)
            (100.0 *. (nshare -. oshare))
      | None -> Printf.printf "NEW   %-16s share %5.1f%%\n" phase (100.0 *. nshare))
    nw.shares;
  (match (o.stamp_hit_rate, nw.stamp_hit_rate) with
  | Some a, Some b ->
      Printf.printf "info  stamp_hit_rate   %5.3f -> %5.3f  (%+.3f)\n" a b
        (b -. a)
  | _ -> ());
  (match (o.avg_imbalance, nw.avg_imbalance) with
  | Some a, Some b ->
      Printf.printf "info  avg_imbalance    %5.2f -> %5.2f  (%+.2f)\n" a b
        (b -. a)
  | _ -> ());
  Printf.printf "profile diff is advisory; not gating\n"

let () =
  let args = Array.to_list Sys.argv in
  let threshold = ref 20.0 in
  let min_speedup = ref 1.5 in
  let scaling = ref false in
  let forest = ref false in
  let profile = ref false in
  let serve = ref false in
  let files = ref [] in
  let positive_float flag v =
    match float_of_string_opt v with
    | Some f when f > 0.0 -> f
    | _ ->
        Printf.eprintf "compare_bench: %s expects a positive number\n" flag;
        exit 2
  in
  let rec parse_args = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        threshold := positive_float "--threshold" v;
        parse_args rest
    | "--min-speedup" :: v :: rest ->
        min_speedup := positive_float "--min-speedup" v;
        parse_args rest
    | "--scaling" :: rest ->
        scaling := true;
        parse_args rest
    | "--forest" :: rest ->
        forest := true;
        parse_args rest
    | "--profile" :: rest ->
        profile := true;
        parse_args rest
    | "--serve" :: rest ->
        serve := true;
        parse_args rest
    | a :: rest ->
        files := a :: !files;
        parse_args rest
  in
  parse_args (List.tl args);
  match List.rev !files with
  | [ old_path; new_path ] when !profile -> (
      try
        compare_profile old_path new_path;
        exit 0
      with
      | Parse_error msg ->
          Printf.eprintf "compare_bench: parse error: %s\n" msg;
          exit 2
      | Sys_error msg ->
          Printf.eprintf "compare_bench: %s\n" msg;
          exit 2)
  | [ old_path; new_path ] when !serve -> (
      try
        compare_serve old_path new_path;
        exit 0
      with
      | Parse_error msg ->
          Printf.eprintf "compare_bench: parse error: %s\n" msg;
          exit 2
      | Sys_error msg ->
          Printf.eprintf "compare_bench: %s\n" msg;
          exit 2)
  | [ old_path; new_path ] when !forest -> (
      try
        let failures = compare_forest ~threshold:!threshold old_path new_path in
        exit (if failures > 0 then 1 else 0)
      with
      | Parse_error msg ->
          Printf.eprintf "compare_bench: parse error: %s\n" msg;
          exit 2
      | Sys_error msg ->
          Printf.eprintf "compare_bench: %s\n" msg;
          exit 2)
  | [ old_path; new_path ] when !scaling -> (
      try
        let failures =
          compare_scaling ~threshold:!threshold ~min_speedup:!min_speedup
            old_path new_path
        in
        exit (if failures > 0 then 1 else 0)
      with
      | Parse_error msg ->
          Printf.eprintf "compare_bench: parse error: %s\n" msg;
          exit 2
      | Sys_error msg ->
          Printf.eprintf "compare_bench: %s\n" msg;
          exit 2)
  | [ old_path; new_path ] -> (
      try
        let old_cells = cells_of_file old_path in
        let new_cells = cells_of_file new_path in
        let regressions = ref 0 and compared = ref 0 in
        List.iter
          (fun (o : cell) ->
            match
              List.find_opt
                (fun (c : cell) ->
                  c.workload = o.workload && c.algo = o.algo)
                new_cells
            with
            | None ->
                Printf.printf "SKIP  %-14s %-8s only in %s\n" o.workload
                  o.algo old_path
            | Some nw -> (
                match (o.rps, nw.rps) with
                | Some orps, Some nrps when orps > 0.0 ->
                    incr compared;
                    let change = (nrps -. orps) /. orps *. 100.0 in
                    let bad = change < -.(!threshold) in
                    if bad then incr regressions;
                    Printf.printf "%s  %-14s %-8s %12.0f -> %12.0f  %+6.1f%%\n"
                      (if bad then "FAIL" else "ok  ")
                      o.workload o.algo orps nrps change
                | _ ->
                    Printf.printf
                      "SKIP  %-14s %-8s rounds_per_sec missing\n" o.workload
                      o.algo))
          old_cells;
        List.iter
          (fun (c : cell) ->
            if
              not
                (List.exists
                   (fun (o : cell) ->
                     o.workload = c.workload && o.algo = c.algo)
                   old_cells)
            then
              Printf.printf "NEW   %-14s %-8s only in %s\n" c.workload c.algo
                new_path)
          new_cells;
        Printf.printf "compared %d cells, %d regression(s) beyond %.0f%%\n"
          !compared !regressions !threshold;
        exit (if !regressions > 0 then 1 else 0)
      with
      | Parse_error msg ->
          Printf.eprintf "compare_bench: parse error: %s\n" msg;
          exit 2
      | Sys_error msg ->
          Printf.eprintf "compare_bench: %s\n" msg;
          exit 2)
  | _ ->
      prerr_endline
        "usage: compare_bench OLD.json NEW.json [--threshold PCT]\n\
        \       compare_bench --scaling BASELINE.json NEW.json [--threshold \
         PCT] [--min-speedup X]\n\
        \       compare_bench --forest BASELINE.json NEW.json [--threshold \
         PCT]\n\
        \       compare_bench --profile BASELINE.json NEW.json\n\
        \       compare_bench --serve BASELINE.json NEW.json";
      exit 2
