(* Throughput-regression comparator for bench_json artifacts.

     compare_bench OLD.json NEW.json [--threshold PCT]

   Matches cells by (workload, algo) and compares rounds_per_sec.
   Exit 1 when any matching cell regressed by more than the threshold
   (default 20%), exit 2 on unreadable input.  Cells present on only
   one side, or missing the metric (older artifacts predate it), are
   reported and skipped — the step must stay useful against historical
   files.

   The repository deliberately has no JSON dependency; this is a
   minimal recursive-descent parser for the subset bench_json emits
   (objects, arrays, strings with escapes, numbers, booleans, null). *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    String.iter expect word;
    value
  in
  let string_body () =
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '\000' -> fail "unterminated string"
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              (* Pass code points through as '?': bench_json never
                 emits \u escapes; tolerate them without decoding. *)
              advance ();
              advance ();
              advance ();
              Buffer.add_char b '?'
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let numchar c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while numchar (peek ()) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else Obj (members [])
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          List []
        end
        else List (elements [])
    | '"' ->
        advance ();
        Str (string_body ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | c when c = '-' || (c >= '0' && c <= '9') -> Num (number ())
    | _ -> fail "unexpected character"
  and members acc =
    skip_ws ();
    expect '"';
    let k = string_body () in
    skip_ws ();
    expect ':';
    let v = value () in
    skip_ws ();
    match peek () with
    | ',' ->
        advance ();
        members ((k, v) :: acc)
    | '}' ->
        advance ();
        List.rev ((k, v) :: acc)
    | _ -> fail "expected ',' or '}'"
  and elements acc =
    let v = value () in
    skip_ws ();
    match peek () with
    | ',' ->
        advance ();
        elements (v :: acc)
    | ']' ->
        advance ();
        List.rev (v :: acc)
    | _ -> fail "expected ',' or ']'"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field obj k =
  match obj with Obj kvs -> List.assoc_opt k kvs | _ -> None

let str_field obj k =
  match field obj k with Some (Str s) -> Some s | _ -> None

let num_field obj k =
  match field obj k with Some (Num f) -> Some f | _ -> None

type cell = { workload : string; algo : string; rps : float option }

let cells_of_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  let root = parse body in
  match field root "cells" with
  | Some (List cs) ->
      List.filter_map
        (fun c ->
          match (str_field c "workload", str_field c "algo") with
          | Some workload, Some algo ->
              Some { workload; algo; rps = num_field c "rounds_per_sec" }
          | _ -> None)
        cs
  | _ -> raise (Parse_error "no \"cells\" array")

let () =
  let args = Array.to_list Sys.argv in
  let threshold = ref 20.0 in
  let files = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f > 0.0 -> threshold := f
        | _ ->
            prerr_endline "compare_bench: --threshold expects a positive number";
            exit 2);
        parse_args rest
    | a :: rest ->
        files := a :: !files;
        parse_args rest
  in
  parse_args (List.tl args);
  match List.rev !files with
  | [ old_path; new_path ] -> (
      try
        let old_cells = cells_of_file old_path in
        let new_cells = cells_of_file new_path in
        let regressions = ref 0 and compared = ref 0 in
        List.iter
          (fun (o : cell) ->
            match
              List.find_opt
                (fun (c : cell) ->
                  c.workload = o.workload && c.algo = o.algo)
                new_cells
            with
            | None ->
                Printf.printf "SKIP  %-14s %-8s only in %s\n" o.workload
                  o.algo old_path
            | Some nw -> (
                match (o.rps, nw.rps) with
                | Some orps, Some nrps when orps > 0.0 ->
                    incr compared;
                    let change = (nrps -. orps) /. orps *. 100.0 in
                    let bad = change < -.(!threshold) in
                    if bad then incr regressions;
                    Printf.printf "%s  %-14s %-8s %12.0f -> %12.0f  %+6.1f%%\n"
                      (if bad then "FAIL" else "ok  ")
                      o.workload o.algo orps nrps change
                | _ ->
                    Printf.printf
                      "SKIP  %-14s %-8s rounds_per_sec missing\n" o.workload
                      o.algo))
          old_cells;
        List.iter
          (fun (c : cell) ->
            if
              not
                (List.exists
                   (fun (o : cell) ->
                     o.workload = c.workload && o.algo = c.algo)
                   old_cells)
            then
              Printf.printf "NEW   %-14s %-8s only in %s\n" c.workload c.algo
                new_path)
          new_cells;
        Printf.printf "compared %d cells, %d regression(s) beyond %.0f%%\n"
          !compared !regressions !threshold;
        exit (if !regressions > 0 then 1 else 0)
      with
      | Parse_error msg ->
          Printf.eprintf "compare_bench: parse error: %s\n" msg;
          exit 2
      | Sys_error msg ->
          Printf.eprintf "compare_bench: %s\n" msg;
          exit 2)
  | _ ->
      prerr_endline
        "usage: compare_bench OLD.json NEW.json [--threshold PCT]";
      exit 2
